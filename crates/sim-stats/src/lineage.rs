//! Per-cache-line coherence provenance (the "lineage" of every block).
//!
//! PR 1's observability answers *where the cycles went*; this module answers
//! the question one level lower, the one the paper's Sections 4.1–4.3 argue
//! from: *which block* generated the useless traffic, *whose write*
//! invalidated *whose copy*, and *what sharing pattern* the block exhibits
//! under the protocol that ran.
//!
//! The [`Lineage`] recorder lives inside the [`crate::Classifier`] (enabled
//! only when `MachineConfig::obs` is on) and is fed from the classifier's
//! existing choke points, so it sees exactly the event stream the Section
//! 3.2 taxonomy is computed from:
//!
//! * every home-directory state transition, with its cause (the triggering
//!   node, the message kind, and the acting node's program phase);
//! * every external invalidation as a writer→victim causal edge, memoized
//!   per (victim, block) so the victim's *next miss* carries a provenance
//!   chain ("miss on `count` at node 5 ← invalidated by node 2's write in
//!   phase `acquire`");
//! * every update-message arrival (delivery or competitive drop) with its
//!   writer edge.
//!
//! On top of the stream an online per-block **sharing-pattern classifier**
//! maintains distinct-reader/writer sets, accesses-between-writer-changes,
//! and invalidations-plus-updates-per-write, and labels each block:
//!
//! | pattern             | rule                                              |
//! |---------------------|---------------------------------------------------|
//! | `read-only`         | no write ever became globally visible             |
//! | `private`           | one writer, no other node accessed the block      |
//! | `producer-consumer` | one writer, other nodes read the block            |
//! | `migratory`         | ≥2 writers, < 2 invalidations+updates per write   |
//! | `wide-shared`       | ≥2 writers, ≥ 2 invalidations+updates per write   |
//!
//! Per-class miss/update counts are mirrored per block at the classifier's
//! single bump choke points, so the lineage totals balance against the
//! [`crate::TrafficReport`] *by construction* (checked in `tests/lineage.rs`).
//!
//! Everything is passive bookkeeping behind an `Option`: when lineage is off
//! (the default) the classifier does not even branch into this module, and
//! outputs are byte-identical to a build without it.

use std::collections::HashMap;

use sim_engine::{Cycle, NodeId};
use sim_mem::{Addr, BlockAddr};

use crate::json::Json;
use crate::report::{MissClass, MissStats, UpdateClass, UpdateStats};

/// Cap on stored provenance events (counters keep accumulating past it;
/// only the event *list* — what the Chrome exporter draws — is bounded).
pub const LINEAGE_EVENT_CAP: usize = 1 << 14;

/// One recorded causal edge: the write that killed a copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalCause {
    /// The node whose write invalidated the copy.
    pub writer: NodeId,
    /// The writer's program phase when the invalidation landed.
    pub writer_phase: u16,
    /// The word whose write triggered the invalidation.
    pub word_addr: Addr,
    /// Cycle the copy was lost.
    pub at: Cycle,
}

/// What happened to a traced block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineEventKind {
    /// The home directory entry changed stable state (`from` ≠ `to`).
    DirTransition {
        /// Outgoing [`sim_mem::DirState`] name.
        from: &'static str,
        /// Incoming state name.
        to: &'static str,
        /// The node whose request drove the transition.
        actor: NodeId,
        /// The message kind the home was processing.
        msg: &'static str,
    },
    /// `victim`'s cached copy was killed by `writer`'s write.
    Invalidation {
        /// The node that lost its copy.
        victim: NodeId,
        /// The writing node (the causal edge's source).
        writer: NodeId,
        /// The writer's phase at that moment.
        writer_phase: u16,
        /// The written word.
        word_addr: Addr,
    },
    /// `node` missed on the block; `caused_by` is the invalidation edge the
    /// miss chains back to, when the copy was lost to a remote write.
    Miss {
        /// The missing node.
        node: NodeId,
        /// The Section 3.2 class of the miss.
        class: MissClass,
        /// The provenance edge (writer, phase, word) when known.
        caused_by: Option<InvalCause>,
    },
    /// An update message from `writer` was applied at `node`'s cache.
    UpdateDelivery {
        /// The receiving sharer.
        node: NodeId,
        /// The writing node.
        writer: NodeId,
        /// The writer's phase at arrival.
        writer_phase: u16,
    },
    /// An update from `writer` tripped the competitive threshold at `node`.
    UpdateDrop {
        /// The node whose copy self-invalidated.
        node: NodeId,
        /// The writing node.
        writer: NodeId,
        /// The writer's phase at arrival.
        writer_phase: u16,
    },
}

/// One provenance event on one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineEvent {
    /// Cycle the event fired.
    pub at: Cycle,
    /// The block it concerns.
    pub block: BlockAddr,
    /// Program phase of the node the event happened *at* (victim for
    /// invalidations and update arrivals, the missing node for misses, the
    /// actor for directory transitions).
    pub phase: u16,
    /// What happened.
    pub kind: LineEventKind,
}

/// The provenance chain of one miss: who missed, and which remote write the
/// miss chains back to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProvenanceChain {
    /// The missing node.
    pub node: NodeId,
    /// The missed word.
    pub addr: Addr,
    /// The missing node's phase.
    pub phase: u16,
    /// Cycle of the miss.
    pub at: Cycle,
    /// The invalidation edge the miss chains back to.
    pub cause: InvalCause,
}

/// The sharing pattern a block exhibited under the protocol that ran.
///
/// Patterns are *as observed*: the same block can classify differently
/// under WI and PU because the protocols generate different invalidation
/// and update streams (which is exactly the paper's point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SharingPattern {
    /// No write to the block ever became globally visible.
    ReadOnly,
    /// One writer and no other node ever accessed the block.
    Private,
    /// One writer; other nodes read the block.
    ProducerConsumer,
    /// Several writers, but each write disturbs few copies (ownership hops
    /// node to node — lock qnodes, migratory data).
    Migratory,
    /// Several writers and each write reaches ≥ 2 remote copies on average
    /// (barrier counters, flags many nodes watch).
    WideShared,
}

impl SharingPattern {
    /// Stable name used in reports, tables, and tests.
    pub fn name(self) -> &'static str {
        match self {
            SharingPattern::ReadOnly => "read-only",
            SharingPattern::Private => "private",
            SharingPattern::ProducerConsumer => "producer-consumer",
            SharingPattern::Migratory => "migratory",
            SharingPattern::WideShared => "wide-shared",
        }
    }
}

/// Fanout (invalidations + update arrivals per write) at or above which a
/// multi-writer block counts as wide-shared rather than migratory.
pub const WIDE_SHARED_FANOUT: f64 = 2.0;

/// Per-block accumulation state.
#[derive(Debug, Clone, Default)]
struct BlockAcc {
    readers: u64,
    writers: u64,
    reads: u64,
    writes: u64,
    writer_changes: u64,
    accesses_since_change: u64,
    accesses_between_changes: u64,
    last_writer: Option<NodeId>,
    invalidations: u64,
    update_deliveries: u64,
    update_drops: u64,
    dir_transitions: u64,
    misses: MissStats,
    updates: UpdateStats,
    last_provenance: Option<ProvenanceChain>,
}

impl BlockAcc {
    fn pattern(&self) -> SharingPattern {
        if self.writes == 0 {
            return SharingPattern::ReadOnly;
        }
        if self.writers.count_ones() <= 1 {
            let w = self.last_writer.unwrap_or(0);
            let others_accessed = self.readers & !(1u64 << (w as u32 % 64)) != 0;
            return if others_accessed { SharingPattern::ProducerConsumer } else { SharingPattern::Private };
        }
        let disturbed = self.invalidations + self.update_deliveries + self.update_drops;
        if disturbed as f64 / self.writes as f64 >= WIDE_SHARED_FANOUT {
            SharingPattern::WideShared
        } else {
            SharingPattern::Migratory
        }
    }
}

/// The live per-line provenance recorder. Owned by the
/// [`crate::Classifier`]; turned into a [`LineageReport`] at the end of the
/// run.
#[derive(Debug)]
pub struct Lineage {
    /// Current program phase per node.
    phase: Vec<u16>,
    /// Bytes per cache block (for structure-label overlap tests).
    block_bytes: Addr,
    blocks: HashMap<BlockAddr, BlockAcc>,
    /// Last external invalidation per (victim, block); consumed by the
    /// victim's next miss on the block.
    last_inval: HashMap<(NodeId, BlockAddr), InvalCause>,
    events: Vec<LineEvent>,
    events_dropped: u64,
    /// Registered structure ranges `(name, lo, hi)`, in registration order.
    structures: Vec<(String, Addr, Addr)>,
}

impl Lineage {
    /// A recorder for a machine of `num_nodes` with `block_bytes` blocks.
    pub fn new(num_nodes: usize, block_bytes: Addr) -> Self {
        Lineage {
            phase: vec![0; num_nodes],
            block_bytes,
            blocks: HashMap::new(),
            last_inval: HashMap::new(),
            events: Vec::new(),
            events_dropped: 0,
            structures: Vec::new(),
        }
    }

    fn push(&mut self, ev: LineEvent) {
        if self.events.len() < LINEAGE_EVENT_CAP {
            self.events.push(ev);
        } else {
            self.events_dropped += 1;
        }
    }

    fn acc(&mut self, block: BlockAddr) -> &mut BlockAcc {
        self.blocks.entry(block).or_default()
    }

    fn phase_of(&self, node: NodeId) -> u16 {
        self.phase.get(node).copied().unwrap_or(0)
    }

    /// Mirrors [`crate::Classifier::register_structure`].
    pub fn register_structure(&mut self, name: &str, lo: Addr, hi: Addr) {
        self.structures.push((name.to_string(), lo, hi));
    }

    /// Node `node` entered program `phase`.
    pub fn set_phase(&mut self, node: NodeId, phase: u16) {
        if let Some(p) = self.phase.get_mut(node) {
            *p = phase;
        }
    }

    /// A node read a word of `block` (load, spin check, or atomic).
    pub fn note_read(&mut self, node: NodeId, block: BlockAddr) {
        let acc = self.acc(block);
        acc.reads += 1;
        acc.readers |= 1u64 << (node as u32 % 64);
        acc.accesses_since_change += 1;
    }

    /// A write by `writer` to a word of `block` became globally visible.
    pub fn note_write(&mut self, writer: NodeId, block: BlockAddr) {
        let acc = self.acc(block);
        acc.writes += 1;
        acc.writers |= 1u64 << (writer as u32 % 64);
        if acc.last_writer != Some(writer) {
            if acc.last_writer.is_some() {
                acc.writer_changes += 1;
                acc.accesses_between_changes += acc.accesses_since_change;
            }
            acc.accesses_since_change = 0;
            acc.last_writer = Some(writer);
        }
        acc.accesses_since_change += 1;
    }

    /// `victim` lost its copy of `block` to `writer`'s write of `word_addr`.
    /// Records the causal edge and memoizes it for the victim's next miss.
    pub fn invalidation(
        &mut self,
        victim: NodeId,
        block: BlockAddr,
        writer: NodeId,
        word_addr: Addr,
        at: Cycle,
    ) {
        let writer_phase = self.phase_of(writer);
        let cause = InvalCause { writer, writer_phase, word_addr, at };
        self.last_inval.insert((victim, block), cause);
        self.acc(block).invalidations += 1;
        let phase = self.phase_of(victim);
        self.push(LineEvent {
            at,
            block,
            phase,
            kind: LineEventKind::Invalidation { victim, writer, writer_phase, word_addr },
        });
    }

    /// `victim` lost its copy of `block` to an eviction or self-invalidation:
    /// any memoized external cause no longer explains the next miss.
    pub fn copy_lost_local(&mut self, victim: NodeId, block: BlockAddr) {
        self.last_inval.remove(&(victim, block));
    }

    /// `node` missed on `addr`; chains the miss to the memoized invalidation
    /// edge (consumed here) when the loss was external.
    pub fn miss(&mut self, node: NodeId, block: BlockAddr, addr: Addr, class: MissClass, at: Cycle) {
        let caused_by = self
            .last_inval
            .remove(&(node, block))
            .filter(|_| matches!(class, MissClass::TrueSharing | MissClass::FalseSharing));
        let phase = self.phase_of(node);
        if let Some(cause) = caused_by {
            self.acc(block).last_provenance = Some(ProvenanceChain { node, addr, phase, at, cause });
        }
        self.push(LineEvent { at, block, phase, kind: LineEventKind::Miss { node, class, caused_by } });
    }

    /// An update message from `writer` arrived at `node` (applied when
    /// `dropped` is false; a competitive-threshold drop otherwise).
    pub fn update_arrival(
        &mut self,
        node: NodeId,
        block: BlockAddr,
        writer: NodeId,
        dropped: bool,
        at: Cycle,
    ) {
        let writer_phase = self.phase_of(writer);
        let acc = self.acc(block);
        let kind = if dropped {
            acc.update_drops += 1;
            LineEventKind::UpdateDrop { node, writer, writer_phase }
        } else {
            acc.update_deliveries += 1;
            LineEventKind::UpdateDelivery { node, writer, writer_phase }
        };
        let phase = self.phase_of(node);
        self.push(LineEvent { at, block, phase, kind });
    }

    /// The home directory entry for `block` changed stable state.
    #[allow(clippy::too_many_arguments)]
    pub fn dir_transition(
        &mut self,
        block: BlockAddr,
        from: &'static str,
        to: &'static str,
        actor: NodeId,
        msg: &'static str,
        at: Cycle,
    ) {
        if from == to {
            return;
        }
        self.acc(block).dir_transitions += 1;
        let phase = self.phase_of(actor);
        self.push(LineEvent {
            at,
            block,
            phase,
            kind: LineEventKind::DirTransition { from, to, actor, msg },
        });
    }

    /// Mirrors one classified miss into the block's counters (called from
    /// the classifier's single bump choke point, so lineage totals balance
    /// against the report by construction).
    pub fn mirror_miss(&mut self, block: BlockAddr, class: MissClass) {
        self.acc(block).misses.bump(class);
    }

    /// Mirrors one classified update (see [`Lineage::mirror_miss`]).
    pub fn mirror_update(&mut self, block: BlockAddr, class: UpdateClass) {
        self.acc(block).updates.bump(class);
    }

    /// Mirrors one exclusive-request (upgrade) transaction.
    pub fn mirror_exclusive(&mut self, block: BlockAddr) {
        self.acc(block).misses.exclusive_requests += 1;
    }

    /// The label of `block`: the last-registered structure overlapping it.
    fn label_of(&self, block: BlockAddr) -> Option<String> {
        let (blo, bhi) = (block.0, block.0 + self.block_bytes);
        self.structures
            .iter()
            .rev()
            .find(|(_, lo, hi)| *lo < bhi && blo < *hi)
            .map(|(name, _, _)| name.clone())
    }

    /// Freezes accumulation into the end-of-run report.
    pub fn into_report(self) -> LineageReport {
        let mut blocks: Vec<BlockProfile> = self
            .blocks
            .iter()
            .map(|(&block, acc)| {
                let changes = acc.writer_changes.max(1);
                BlockProfile {
                    block,
                    label: self.label_of(block),
                    pattern: acc.pattern(),
                    readers: acc.readers.count_ones(),
                    writers: acc.writers.count_ones(),
                    reads: acc.reads,
                    writes: acc.writes,
                    writer_changes: acc.writer_changes,
                    accesses_per_writer_change: (acc.accesses_between_changes + acc.accesses_since_change)
                        as f64
                        / changes as f64,
                    fanout_per_write: if acc.writes == 0 {
                        0.0
                    } else {
                        (acc.invalidations + acc.update_deliveries + acc.update_drops) as f64
                            / acc.writes as f64
                    },
                    invalidations: acc.invalidations,
                    update_deliveries: acc.update_deliveries,
                    update_drops: acc.update_drops,
                    dir_transitions: acc.dir_transitions,
                    misses: acc.misses,
                    updates: acc.updates,
                    provenance: acc.last_provenance,
                }
            })
            .collect();
        blocks.sort_by(|a, b| b.traffic().cmp(&a.traffic()).then(a.block.cmp(&b.block)));

        // Aggregate per structure base name (`qnode[3]` → `qnode[*]`).
        let mut by_base: HashMap<String, StructureLineage> = HashMap::new();
        for p in blocks.iter().filter(|p| p.label.is_some()) {
            let base = base_name(p.label.as_deref().unwrap());
            let s = by_base.entry(base.clone()).or_insert_with(|| StructureLineage {
                name: base,
                blocks: 0,
                pattern: p.pattern,
                pattern_blocks: 0,
                misses: MissStats::default(),
                updates: UpdateStats::default(),
                invalidations: 0,
                update_deliveries: 0,
            });
            s.blocks += 1;
            s.misses.merge(&p.misses);
            s.updates.merge(&p.updates);
            s.invalidations += p.invalidations;
            s.update_deliveries += p.update_deliveries + p.update_drops;
        }
        // Dominant pattern per structure: the pattern shared by the most
        // member blocks (ties broken toward the hotter block, which comes
        // first in the traffic-sorted list).
        for s in by_base.values_mut() {
            let mut counts: HashMap<SharingPattern, u64> = HashMap::new();
            for p in blocks.iter() {
                if p.label.as_deref().map(base_name) == Some(s.name.clone()) {
                    *counts.entry(p.pattern).or_insert(0) += 1;
                }
            }
            if let Some(p) = blocks.iter().find(|p| p.label.as_deref().map(base_name) == Some(s.name.clone()))
            {
                let dominant = counts
                    .iter()
                    .max_by_key(|(pat, &n)| (n, u64::from(**pat == p.pattern)))
                    .map(|(&pat, _)| pat)
                    .unwrap_or(p.pattern);
                s.pattern = dominant;
                s.pattern_blocks = counts.get(&dominant).copied().unwrap_or(0);
            }
        }
        let mut by_structure: Vec<StructureLineage> = by_base.into_values().collect();
        by_structure.sort_by(|a, b| {
            let ua = a.misses.useless() + a.updates.useless();
            let ub = b.misses.useless() + b.updates.useless();
            ub.cmp(&ua).then_with(|| a.name.cmp(&b.name))
        });

        LineageReport { blocks, by_structure, events: self.events, events_dropped: self.events_dropped }
    }
}

fn base_name(name: &str) -> String {
    match name.find('[') {
        Some(i) => format!("{}[*]", &name[..i]),
        None => name.to_string(),
    }
}

/// End-of-run profile of one block.
#[derive(Debug, Clone)]
pub struct BlockProfile {
    /// The block.
    pub block: BlockAddr,
    /// The registered structure overlapping the block, if any.
    pub label: Option<String>,
    /// Observed sharing pattern.
    pub pattern: SharingPattern,
    /// Distinct nodes that read the block.
    pub readers: u32,
    /// Distinct nodes whose writes became visible.
    pub writers: u32,
    /// Read references (loads, spin checks, atomics).
    pub reads: u64,
    /// Globally visible writes.
    pub writes: u64,
    /// Times the visible writer changed.
    pub writer_changes: u64,
    /// Mean accesses between writer changes (all accesses when the writer
    /// never changed).
    pub accesses_per_writer_change: f64,
    /// Invalidations + update arrivals per visible write.
    pub fanout_per_write: f64,
    /// External invalidations of copies of this block.
    pub invalidations: u64,
    /// Update messages applied at sharer caches.
    pub update_deliveries: u64,
    /// Update messages that tripped the competitive threshold.
    pub update_drops: u64,
    /// Home-directory stable-state transitions.
    pub dir_transitions: u64,
    /// Per-class misses on the block (mirrors the classifier).
    pub misses: MissStats,
    /// Per-class updates on the block (mirrors the classifier).
    pub updates: UpdateStats,
    /// The most recent miss provenance chain, when one was recorded.
    pub provenance: Option<ProvenanceChain>,
}

impl BlockProfile {
    /// Total classified traffic on the block.
    pub fn traffic(&self) -> u64 {
        self.misses.total_misses() + self.updates.total()
    }

    /// Useless classified traffic on the block.
    pub fn useless_traffic(&self) -> u64 {
        self.misses.useless() + self.updates.useless()
    }

    /// Renders the provenance chain ("miss on `count` at node 5 ←
    /// invalidated by node 2's write in phase `acquire`"), resolving phase
    /// ids through `phase_label`.
    pub fn provenance_string(&self, phase_label: &dyn Fn(u16) -> String) -> Option<String> {
        self.provenance.map(|p| {
            let what = self.label.as_deref().unwrap_or("block");
            format!(
                "miss on `{}` at node {} in phase `{}` ← invalidated by node {}'s write of {:#x} in phase `{}`",
                what,
                p.node,
                phase_label(p.phase),
                p.cause.writer,
                p.cause.word_addr,
                phase_label(p.cause.writer_phase),
            )
        })
    }
}

/// Lineage aggregated over the blocks of one structure base name.
#[derive(Debug, Clone)]
pub struct StructureLineage {
    /// Base name (`qnode[*]` groups every `qnode[i]`).
    pub name: String,
    /// Member blocks observed.
    pub blocks: u64,
    /// Dominant member pattern.
    pub pattern: SharingPattern,
    /// How many member blocks share the dominant pattern.
    pub pattern_blocks: u64,
    /// Summed misses.
    pub misses: MissStats,
    /// Summed updates.
    pub updates: UpdateStats,
    /// Summed invalidations.
    pub invalidations: u64,
    /// Summed update arrivals (deliveries + drops).
    pub update_deliveries: u64,
}

impl StructureLineage {
    /// Useless classified traffic summed over member blocks.
    pub fn useless_traffic(&self) -> u64 {
        self.misses.useless() + self.updates.useless()
    }
}

/// The frozen per-line provenance report attached to
/// [`crate::ObsReport::lineage`].
#[derive(Debug, Clone)]
pub struct LineageReport {
    /// Per-block profiles, hottest (most classified traffic) first.
    pub blocks: Vec<BlockProfile>,
    /// Per-structure aggregation, sorted by (useless traffic desc, name).
    pub by_structure: Vec<StructureLineage>,
    /// The bounded provenance event list (first [`LINEAGE_EVENT_CAP`]).
    pub events: Vec<LineEvent>,
    /// Events not stored once the cap was reached (counters above still
    /// include them).
    pub events_dropped: u64,
}

impl LineageReport {
    /// Sum of per-block miss counters (must equal the classifier's machine
    /// totals; asserted in `tests/lineage.rs`).
    pub fn miss_totals(&self) -> MissStats {
        let mut m = MissStats::default();
        for b in &self.blocks {
            m.merge(&b.misses);
        }
        m
    }

    /// Sum of per-block update counters (see [`LineageReport::miss_totals`]).
    pub fn update_totals(&self) -> UpdateStats {
        let mut u = UpdateStats::default();
        for b in &self.blocks {
            u.merge(&b.updates);
        }
        u
    }

    /// The profile for the block overlapping a registered structure label.
    pub fn block_labeled(&self, label: &str) -> Option<&BlockProfile> {
        self.blocks.iter().find(|b| b.label.as_deref() == Some(label))
    }

    /// The aggregated row for a structure base name.
    pub fn structure(&self, base: &str) -> Option<&StructureLineage> {
        self.by_structure.iter().find(|s| s.name == base)
    }

    /// Serializes the report; phase ids resolve through `phase_label`.
    pub fn to_json(&self, phase_label: &dyn Fn(u16) -> String) -> Json {
        let blocks = self
            .blocks
            .iter()
            .map(|b| {
                let mut pairs = vec![
                    ("block".to_string(), Json::from(format!("{:#x}", b.block.0))),
                    ("label".to_string(), b.label.as_deref().map(Json::from).unwrap_or(Json::Null)),
                    ("pattern".to_string(), Json::from(b.pattern.name())),
                    ("readers".to_string(), Json::from(b.readers)),
                    ("writers".to_string(), Json::from(b.writers)),
                    ("reads".to_string(), Json::U64(b.reads)),
                    ("writes".to_string(), Json::U64(b.writes)),
                    ("writer_changes".to_string(), Json::U64(b.writer_changes)),
                    ("accesses_per_writer_change".to_string(), Json::F64(b.accesses_per_writer_change)),
                    ("fanout_per_write".to_string(), Json::F64(b.fanout_per_write)),
                    ("invalidations".to_string(), Json::U64(b.invalidations)),
                    ("update_deliveries".to_string(), Json::U64(b.update_deliveries)),
                    ("update_drops".to_string(), Json::U64(b.update_drops)),
                    ("dir_transitions".to_string(), Json::U64(b.dir_transitions)),
                    ("misses".to_string(), b.misses.to_json()),
                    ("updates".to_string(), b.updates.to_json()),
                ];
                if let Some(p) = b.provenance_string(phase_label) {
                    pairs.push(("provenance".to_string(), Json::from(p)));
                }
                Json::Obj(pairs)
            })
            .collect();
        let by_structure = self
            .by_structure
            .iter()
            .map(|s| {
                Json::obj([
                    ("name", Json::from(s.name.as_str())),
                    ("blocks", Json::U64(s.blocks)),
                    ("pattern", Json::from(s.pattern.name())),
                    ("pattern_blocks", Json::U64(s.pattern_blocks)),
                    ("misses", s.misses.to_json()),
                    ("updates", s.updates.to_json()),
                    ("invalidations", Json::U64(s.invalidations)),
                    ("update_deliveries", Json::U64(s.update_deliveries)),
                ])
            })
            .collect();
        Json::obj([
            ("blocks", Json::Arr(blocks)),
            ("by_structure", Json::Arr(by_structure)),
            ("events", Json::from(self.events.len())),
            ("events_dropped", Json::U64(self.events_dropped)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: BlockAddr = BlockAddr(0x1000);

    fn lineage() -> Lineage {
        Lineage::new(8, 64)
    }

    #[test]
    fn untouched_block_is_absent_and_read_only_without_writes() {
        let mut l = lineage();
        l.note_read(0, B);
        l.note_read(1, B);
        let r = l.into_report();
        assert_eq!(r.blocks.len(), 1);
        assert_eq!(r.blocks[0].pattern, SharingPattern::ReadOnly);
        assert_eq!(r.blocks[0].readers, 2);
    }

    #[test]
    fn single_writer_patterns() {
        let mut l = lineage();
        l.note_write(3, B);
        l.note_write(3, B);
        assert_eq!(l.blocks[&B].pattern(), SharingPattern::Private);
        l.note_read(5, B);
        assert_eq!(l.blocks[&B].pattern(), SharingPattern::ProducerConsumer);
    }

    #[test]
    fn migratory_vs_wide_shared_by_fanout() {
        let mut l = lineage();
        // Two writers, one invalidation per write: migratory.
        l.note_write(0, B);
        l.invalidation(1, B, 0, 0x1000, 10);
        l.note_write(1, B);
        l.invalidation(0, B, 1, 0x1000, 20);
        assert_eq!(l.blocks[&B].pattern(), SharingPattern::Migratory);
        // Pile on update deliveries until fanout crosses the threshold.
        for n in 2..6 {
            l.update_arrival(n, B, 1, false, 30);
        }
        assert_eq!(l.blocks[&B].pattern(), SharingPattern::WideShared);
    }

    #[test]
    fn writer_changes_and_access_interval() {
        let mut l = lineage();
        l.note_write(0, B); // writer 0
        l.note_read(0, B);
        l.note_read(1, B);
        l.note_write(1, B); // change #1 after 3 accesses
        l.note_read(1, B);
        l.note_write(0, B); // change #2 after 2 accesses
        let r = l.into_report();
        let b = &r.blocks[0];
        assert_eq!(b.writer_changes, 2);
        // (3 + 2 + trailing 1) / 2 changes = 3.0
        assert!((b.accesses_per_writer_change - 3.0).abs() < 1e-12);
    }

    #[test]
    fn miss_consumes_invalidation_memo_into_provenance() {
        let mut l = lineage();
        l.register_structure("count", 0x1000, 0x1004);
        l.set_phase(2, 1);
        l.invalidation(5, B, 2, 0x1000, 100);
        l.miss(5, B, 0x1000, MissClass::TrueSharing, 120);
        let r = l.into_report();
        let p = r.blocks[0].provenance.expect("provenance recorded");
        assert_eq!(p.node, 5);
        assert_eq!(p.cause.writer, 2);
        assert_eq!(p.cause.writer_phase, 1);
        let s = r.blocks[0].provenance_string(&|ph| format!("ph{ph}")).unwrap();
        assert!(s.contains("`count` at node 5"), "{s}");
        assert!(s.contains("node 2's write"), "{s}");
        assert!(s.contains("`ph1`"), "{s}");
        // The memo was consumed: a second miss has no stale chain.
    }

    #[test]
    fn local_loss_clears_memo() {
        let mut l = lineage();
        l.invalidation(5, B, 2, 0x1000, 100);
        l.copy_lost_local(5, B); // evicted afterwards
        l.miss(5, B, 0x1000, MissClass::Eviction, 120);
        let r = l.into_report();
        assert!(r.blocks[0].provenance.is_none());
    }

    #[test]
    fn mirrors_balance_by_construction() {
        let mut l = lineage();
        l.mirror_miss(B, MissClass::Cold);
        l.mirror_miss(B, MissClass::TrueSharing);
        l.mirror_update(BlockAddr(0x2000), UpdateClass::Proliferation);
        l.mirror_exclusive(B);
        let r = l.into_report();
        let m = r.miss_totals();
        assert_eq!(m.cold, 1);
        assert_eq!(m.true_sharing, 1);
        assert_eq!(m.exclusive_requests, 1);
        assert_eq!(r.update_totals().proliferation, 1);
    }

    #[test]
    fn structure_aggregation_groups_base_names() {
        let mut l = Lineage::new(8, 64);
        l.register_structure("qnode[0]", 0x1000, 0x1008);
        l.register_structure("qnode[1]", 0x2000, 0x2008);
        l.mirror_miss(BlockAddr(0x1000), MissClass::FalseSharing);
        l.mirror_miss(BlockAddr(0x2000), MissClass::FalseSharing);
        l.note_write(0, BlockAddr(0x1000));
        l.note_write(1, BlockAddr(0x1000));
        l.note_write(1, BlockAddr(0x2000));
        l.note_write(2, BlockAddr(0x2000));
        let r = l.into_report();
        let s = r.structure("qnode[*]").expect("aggregated row");
        assert_eq!(s.blocks, 2);
        assert_eq!(s.misses.false_sharing, 2);
        assert_eq!(s.pattern, SharingPattern::Migratory);
        assert_eq!(s.pattern_blocks, 2);
    }

    #[test]
    fn dir_transitions_skip_self_loops_and_cap_events() {
        let mut l = lineage();
        l.dir_transition(B, "Shared", "Shared", 0, "GetS", 5);
        assert!(l.events.is_empty());
        l.dir_transition(B, "Uncached", "Shared", 0, "GetS", 5);
        assert_eq!(l.events.len(), 1);
        assert_eq!(l.blocks[&B].dir_transitions, 1);
    }

    #[test]
    fn event_cap_counts_drops() {
        let mut l = lineage();
        for i in 0..(LINEAGE_EVENT_CAP + 10) {
            l.update_arrival(0, B, 1, false, i as Cycle);
        }
        let r = l.into_report();
        assert_eq!(r.events.len(), LINEAGE_EVENT_CAP);
        assert_eq!(r.events_dropped, 10);
        assert_eq!(r.blocks[0].update_deliveries, (LINEAGE_EVENT_CAP + 10) as u64);
    }

    #[test]
    fn report_json_renders_and_parses() {
        let mut l = lineage();
        l.register_structure("count", 0x1000, 0x1004);
        l.note_write(0, B);
        l.invalidation(1, B, 0, 0x1000, 10);
        l.miss(1, B, 0x1000, MissClass::TrueSharing, 20);
        l.mirror_miss(B, MissClass::TrueSharing);
        let r = l.into_report();
        let json = r.to_json(&|p| format!("phase{p}"));
        let parsed = Json::parse(&json.render()).unwrap();
        let blocks = parsed.get("blocks").unwrap().as_arr().unwrap();
        assert_eq!(blocks[0].get("label").and_then(Json::as_str), Some("count"));
        assert!(blocks[0].get("provenance").is_some());
    }
}

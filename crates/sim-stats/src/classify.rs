//! The event-driven classifier.

use std::collections::HashMap;

use sim_engine::snapshot::{SnapError, SnapReader, SnapWriter};
use sim_engine::{Cycle, NodeId};
use sim_mem::{Addr, BlockAddr, Geometry};

use crate::lineage::{Lineage, LineageReport};
use crate::report::{MissClass, MissStats, TrafficReport, UpdateClass, UpdateStats};

/// Per-home-node update accounting for the network telemetry layer: which
/// home directory's traffic turned out useful vs useless, and how many
/// update deliveries each home's region generated. Indexed by home node.
#[derive(Debug, Clone, Default)]
pub struct HomeUpdates {
    /// End-of-lifetime update classification, bucketed by the updated
    /// word's home node.
    pub classified: Vec<UpdateStats>,
    /// `(applied, dropped)` update arrivals at sharer caches, bucketed by
    /// the updated word's home node.
    pub deliveries: Vec<(u64, u64)>,
}

impl HomeUpdates {
    fn new(num_nodes: usize) -> Self {
        HomeUpdates {
            classified: vec![UpdateStats::default(); num_nodes],
            deliveries: vec![(0, 0); num_nodes],
        }
    }
}

/// Why a cache copy went away — recorded when it happens, consumed when the
/// node misses on the block again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossCause {
    /// Invalidated by another processor's write; carries the written word's
    /// address and the writer so the next miss can be split into true vs
    /// false sharing.
    External { word_addr: Addr, writer: NodeId },
    /// Displaced by a direct-mapped conflict.
    Eviction,
    /// Self-invalidated: competitive-update drop or an explicit flush.
    SelfInvalidate,
}

/// History of one (node, block) copy.
#[derive(Debug, Clone, Copy, Default)]
struct CopyHistory {
    ever_cached: bool,
    lost: Option<(Cycle, LossCause)>,
}

/// A live (delivered, not yet dead) update record.
#[derive(Debug, Clone, Copy)]
struct UpdateRec {
    block_referenced: bool,
}

/// Classifies every miss and update message of a run, given raw events from
/// the protocol layer.
///
/// Event order contract (enforced by the machine): for any word, the
/// `word_written` commit event is emitted no later than the invalidations
/// or update deliveries that the write causes.
#[derive(Debug)]
pub struct Classifier {
    geom: Geometry,
    /// Last globally-visible writer of each word.
    last_writer: HashMap<Addr, (NodeId, Cycle)>,
    /// Copy history per (node, block).
    copies: HashMap<(NodeId, BlockAddr), CopyHistory>,
    /// Live update records per (node, block) → word index → record.
    live_updates: HashMap<(NodeId, BlockAddr), HashMap<usize, UpdateRec>>,
    /// Registered data-structure address ranges for attribution.
    structures: Vec<StructureRange>,
    report: TrafficReport,
    finished: bool,
    /// Per-line provenance recorder (PR 3). `None` — the default — keeps
    /// every code path below branch-free on the lineage side, so the
    /// classifier behaves bit-identically to a build without it.
    lineage: Option<Box<Lineage>>,
    /// Per-home update accounting for network telemetry (PR 5). Same
    /// passivity contract as `lineage`: `None` by default, pure mirror of
    /// the classifications when on.
    home_updates: Option<Box<HomeUpdates>>,
    /// Shared-state touch log for the parallelism-observability layer
    /// ([`crate::parobs`]): blocks whose classifier entries the current
    /// event's handler mutated, drained by the machine after each
    /// committed event. Same passivity contract as `lineage`.
    touch_log: Option<Vec<BlockAddr>>,
}

/// A named address range for per-structure traffic attribution.
#[derive(Debug, Clone)]
struct StructureRange {
    name: String,
    lo: Addr,
    hi: Addr,
}

impl Classifier {
    /// Creates a classifier for a machine with the given geometry.
    pub fn new(geom: Geometry) -> Self {
        Classifier {
            geom,
            last_writer: HashMap::new(),
            copies: HashMap::new(),
            live_updates: HashMap::new(),
            structures: Vec::new(),
            report: TrafficReport::default(),
            finished: false,
            lineage: None,
            home_updates: None,
            touch_log: None,
        }
    }

    // ------------------------------------------------------------------
    // Lineage (per-line provenance; see [`crate::lineage`])
    // ------------------------------------------------------------------

    /// Switches on per-line provenance recording. Passive: the classified
    /// totals are unchanged; lineage only mirrors and annotates them.
    pub fn enable_lineage(&mut self) {
        self.lineage = Some(Box::new(Lineage::new(self.geom.num_nodes, self.geom.block_bytes)));
    }

    /// The live lineage recorder, when enabled.
    pub fn lineage(&self) -> Option<&Lineage> {
        self.lineage.as_deref()
    }

    /// Freezes and detaches the lineage report. Call after
    /// [`Classifier::finish`] so end-of-run update classifications are
    /// mirrored in.
    pub fn take_lineage(&mut self) -> Option<LineageReport> {
        self.lineage.take().map(|l| l.into_report())
    }

    /// Switches on per-home-node update accounting. Passive like lineage:
    /// classifications are mirrored into per-home buckets, nothing else
    /// changes.
    pub fn enable_home_stats(&mut self) {
        self.home_updates = Some(Box::new(HomeUpdates::new(self.geom.num_nodes)));
    }

    /// Detaches the per-home update accounting. Call after
    /// [`Classifier::finish`] so end-of-run classifications are included.
    pub fn take_home_stats(&mut self) -> Option<HomeUpdates> {
        self.home_updates.take().map(|h| *h)
    }

    /// Switches on shared-state touch logging for [`crate::parobs`].
    /// Passive: classifications are untouched; the classifier merely
    /// remembers which per-block entries each event mutated. Every logged
    /// touch is a *write* — the classifier hooks below all update shared
    /// per-word/per-block state (`last_writer`, copy histories, live
    /// update records). Commutative report counters (`bump_miss`,
    /// `bump_update`, reference counts) are deliberately not logged: they
    /// sum-reduce trivially and would never force cross-shard commits.
    pub fn enable_touch_log(&mut self) {
        self.touch_log = Some(Vec::new());
    }

    /// Appends (and clears) the blocks touched since the last drain into
    /// `out`. The machine calls this once per committed event.
    pub fn drain_touch_log(&mut self, out: &mut Vec<BlockAddr>) {
        if let Some(log) = self.touch_log.as_mut() {
            out.append(log);
        }
    }

    fn log_touch(&mut self, block: BlockAddr) {
        if let Some(log) = self.touch_log.as_mut() {
            log.push(block);
        }
    }

    /// `node` entered program `phase` (bridged from the machine's `Phase`
    /// markers so provenance events carry the acting node's phase).
    pub fn set_phase(&mut self, node: NodeId, phase: u16) {
        if let Some(l) = self.lineage.as_mut() {
            l.set_phase(node, phase);
        }
    }

    /// The home directory entry for `block` moved `from` → `to` while
    /// handling `msg` from `actor`. No-op (and no-cost) when lineage is off.
    pub fn dir_transition(
        &mut self,
        block: BlockAddr,
        from: &'static str,
        to: &'static str,
        actor: NodeId,
        msg: &'static str,
        now: Cycle,
    ) {
        if let Some(l) = self.lineage.as_mut() {
            l.dir_transition(block, from, to, actor, msg, now);
        }
    }

    /// An update message from `writer` arrived at `node`'s cache (applied,
    /// or a competitive-threshold `dropped`). Record the writer→victim edge
    /// before [`Classifier::update_delivered`] / `update_caused_drop` runs.
    pub fn update_arrival(&mut self, node: NodeId, addr: Addr, writer: NodeId, dropped: bool, now: Cycle) {
        if let Some(l) = self.lineage.as_mut() {
            let block = self.geom.block_of(addr);
            l.update_arrival(node, block, writer, dropped, now);
        }
        if let Some(h) = self.home_updates.as_mut() {
            let d = &mut h.deliveries[self.geom.home_of(addr)];
            if dropped {
                d.1 += 1;
            } else {
                d.0 += 1;
            }
        }
    }

    /// Registers a named address range (a shared data structure) so the
    /// report can attribute classified traffic to it — the analysis style
    /// the paper uses ("the vast majority of this useless traffic
    /// corresponds to changes in the centralized counter"). Ranges are
    /// half-open `[addr, addr + words*4)`; later registrations win on
    /// overlap.
    pub fn register_structure(&mut self, name: &str, addr: Addr, words: u32) {
        self.structures.push(StructureRange { name: name.to_string(), lo: addr, hi: addr + 4 * words });
        self.report.by_structure.push(crate::report::StructureTraffic {
            name: name.to_string(),
            misses: Default::default(),
            updates: Default::default(),
        });
        if let Some(l) = self.lineage.as_mut() {
            l.register_structure(name, addr, addr + 4 * words);
        }
    }

    fn structure_of(&self, addr: Addr) -> Option<usize> {
        self.structures.iter().rposition(|r| (r.lo..r.hi).contains(&addr))
    }

    /// The registered structure name covering `addr`, if any (later
    /// registrations win on overlap, matching traffic attribution).
    pub fn structure_name_of(&self, addr: Addr) -> Option<&str> {
        self.structure_of(addr).map(|i| self.structures[i].name.as_str())
    }

    /// The last globally-visible writer of `addr` and the commit cycle —
    /// the causal source of a wait that ended on that word. Feeds the
    /// critical-path profiler's chain merges.
    pub fn last_writer_of(&self, addr: Addr) -> Option<(NodeId, Cycle)> {
        self.last_writer.get(&addr).copied()
    }

    fn bump_miss(&mut self, addr: Addr, class: MissClass) {
        self.report.misses.bump(class);
        if let Some(i) = self.structure_of(addr) {
            self.report.by_structure[i].misses.bump(class);
        }
        if let Some(l) = self.lineage.as_mut() {
            l.mirror_miss(self.geom.block_of(addr), class);
        }
    }

    fn bump_update(&mut self, addr: Addr, class: UpdateClass) {
        self.report.updates.bump(class);
        if let Some(i) = self.structure_of(addr) {
            self.report.by_structure[i].updates.bump(class);
        }
        if let Some(l) = self.lineage.as_mut() {
            l.mirror_update(self.geom.block_of(addr), class);
        }
        if let Some(h) = self.home_updates.as_mut() {
            h.classified[self.geom.home_of(addr)].bump(class);
        }
    }

    fn copy(&mut self, node: NodeId, block: BlockAddr) -> &mut CopyHistory {
        self.copies.entry((node, block)).or_default()
    }

    // ------------------------------------------------------------------
    // Reference counting
    // ------------------------------------------------------------------

    /// A processor issued a shared read.
    pub fn count_read(&mut self) {
        self.report.shared_reads += 1;
    }

    /// A processor issued a shared write.
    pub fn count_write(&mut self) {
        self.report.shared_writes += 1;
    }

    /// A processor issued a shared atomic operation.
    pub fn count_atomic(&mut self) {
        self.report.shared_atomics += 1;
    }

    // ------------------------------------------------------------------
    // Write visibility
    // ------------------------------------------------------------------

    /// A write to `addr` by `writer` became globally visible.
    pub fn word_written(&mut self, writer: NodeId, addr: Addr, now: Cycle) {
        self.last_writer.insert(addr, (writer, now));
        self.log_touch(self.geom.block_of(addr));
        if let Some(l) = self.lineage.as_mut() {
            l.note_write(writer, self.geom.block_of(addr));
        }
    }

    // ------------------------------------------------------------------
    // Copy lifecycle
    // ------------------------------------------------------------------

    /// `node` installed a copy of `block` in its cache.
    pub fn copy_acquired(&mut self, node: NodeId, block: BlockAddr) {
        self.log_touch(block);
        let c = self.copy(node, block);
        c.ever_cached = true;
        c.lost = None;
    }

    /// `node` lost its copy of `block`. For [`LossCause::Eviction`] and
    /// [`LossCause::SelfInvalidate`], any live update records die here too
    /// (replacement updates, or leftover records at a drop/flush).
    pub fn copy_lost(&mut self, node: NodeId, block: BlockAddr, cause: LossCause, now: Cycle) {
        self.log_touch(block);
        self.copy(node, block).lost = Some((now, cause));
        if let Some(l) = self.lineage.as_mut() {
            match cause {
                LossCause::External { word_addr, writer } => {
                    l.invalidation(node, block, writer, word_addr, now)
                }
                LossCause::Eviction | LossCause::SelfInvalidate => l.copy_lost_local(node, block),
            }
        }
        if let Some(records) = self.live_updates.remove(&(node, block)) {
            for (widx, rec) in records {
                let class = match cause {
                    LossCause::Eviction => UpdateClass::Replacement,
                    // Records still live when the block self-invalidates or
                    // is invalidated externally were never going to be
                    // consumed: useless. Active false sharing wins over
                    // proliferation, as in the paper's algorithm.
                    LossCause::SelfInvalidate | LossCause::External { .. } => {
                        if rec.block_referenced {
                            UpdateClass::FalseSharing
                        } else {
                            UpdateClass::Proliferation
                        }
                    }
                };
                self.bump_update(block.0 + 4 * widx as Addr, class);
            }
        }
    }

    /// A write under WI hit a read-shared copy and issued an exclusive
    /// (upgrade) request.
    pub fn exclusive_request(&mut self, _node: NodeId, block: BlockAddr) {
        self.log_touch(block);
        self.report.misses.exclusive_requests += 1;
        if let Some(i) = self.structure_of(block.0) {
            self.report.by_structure[i].misses.exclusive_requests += 1;
        }
        if let Some(l) = self.lineage.as_mut() {
            l.mirror_exclusive(block);
        }
    }

    // ------------------------------------------------------------------
    // Misses
    // ------------------------------------------------------------------

    /// `node` missed on the word at `addr`; classify and count the miss.
    /// Call at miss-detection time, before the refill's `copy_acquired`.
    pub fn classify_miss(&mut self, node: NodeId, addr: Addr, now: Cycle) -> MissClass {
        let block = self.geom.block_of(addr);
        self.log_touch(block);
        let history = *self.copy(node, block);
        let class = if !history.ever_cached {
            MissClass::Cold
        } else {
            match history.lost {
                // A refill after a protocol-initiated state change that
                // never removed the copy, or a re-miss with no recorded
                // loss: treat conservatively as cold-start-like truth is
                // unreachable; count as true sharing only with evidence.
                None => MissClass::Cold,
                Some((_, LossCause::Eviction)) => MissClass::Eviction,
                Some((_, LossCause::SelfInvalidate)) => MissClass::Drop,
                Some((lost_at, LossCause::External { word_addr, writer })) => {
                    let same_word = word_addr == addr && writer != node;
                    let later_write =
                        self.last_writer.get(&addr).is_some_and(|&(w, t)| w != node && t >= lost_at);
                    if same_word || later_write {
                        MissClass::TrueSharing
                    } else {
                        MissClass::FalseSharing
                    }
                }
            }
        };
        if let Some(l) = self.lineage.as_mut() {
            l.miss(node, block, addr, class, now);
        }
        self.bump_miss(addr, class);
        class
    }

    // ------------------------------------------------------------------
    // Updates
    // ------------------------------------------------------------------

    /// An update message for `addr` was applied at `node`'s cache. Kills
    /// (and classifies) any live record for the same word, then opens a new
    /// record.
    pub fn update_delivered(&mut self, node: NodeId, addr: Addr) {
        let block = self.geom.block_of(addr);
        self.log_touch(block);
        let widx = self.geom.word_index(addr);
        let records = self.live_updates.entry((node, block)).or_default();
        if let Some(old) = records.insert(widx, UpdateRec { block_referenced: false }) {
            let class =
                if old.block_referenced { UpdateClass::FalseSharing } else { UpdateClass::Proliferation };
            self.bump_update(addr, class);
        }
    }

    /// The update for `addr` arriving at `node` tripped the competitive
    /// threshold: it is a *drop* update and never opens a record.
    pub fn update_caused_drop(&mut self, _node: NodeId, addr: Addr) {
        self.log_touch(self.geom.block_of(addr));
        self.bump_update(addr, UpdateClass::Drop);
    }

    /// `node`'s processor *read* the word at `addr` (plain load, spin
    /// check, or atomic — all consume the value). Consumes a live record
    /// for that word as a true-sharing update and marks sibling records'
    /// blocks as referenced.
    pub fn word_referenced(&mut self, node: NodeId, addr: Addr) {
        let block = self.geom.block_of(addr);
        self.log_touch(block);
        let widx = self.geom.word_index(addr);
        if let Some(l) = self.lineage.as_mut() {
            l.note_read(node, block);
        }
        let mut consumed = false;
        if let Some(records) = self.live_updates.get_mut(&(node, block)) {
            consumed = records.remove(&widx).is_some();
            for rec in records.values_mut() {
                rec.block_referenced = true;
            }
            if records.is_empty() {
                self.live_updates.remove(&(node, block));
            }
        }
        if consumed {
            self.bump_update(addr, UpdateClass::TrueSharing);
        }
    }

    /// `node`'s processor *wrote* the word at `addr`. A write does not
    /// consume an update's value, so a live record for the same word stays
    /// live (it will die useless); sibling records observe block activity
    /// for the false-sharing distinction.
    pub fn word_write_referenced(&mut self, node: NodeId, addr: Addr) {
        let block = self.geom.block_of(addr);
        self.log_touch(block);
        let widx = self.geom.word_index(addr);
        if let Some(records) = self.live_updates.get_mut(&(node, block)) {
            for (&w, rec) in records.iter_mut() {
                if w != widx {
                    rec.block_referenced = true;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Finalization
    // ------------------------------------------------------------------

    /// Ends the run: classifies all still-live update records (termination,
    /// or false sharing when the block saw unrelated references) and
    /// freezes the report.
    pub fn finish(&mut self) -> &TrafficReport {
        assert!(!self.finished, "Classifier::finish called twice");
        self.finished = true;
        let drained: Vec<_> = self.live_updates.drain().collect();
        for ((_, block), records) in drained {
            for (widx, rec) in records {
                let class =
                    if rec.block_referenced { UpdateClass::FalseSharing } else { UpdateClass::Termination };
                self.bump_update(block.0 + 4 * widx as Addr, class);
            }
        }
        &self.report
    }

    /// The report accumulated so far (final after [`Classifier::finish`]).
    pub fn report(&self) -> &TrafficReport {
        &self.report
    }

    // ------------------------------------------------------------------
    // Checkpointing
    // ------------------------------------------------------------------

    /// Serializes the mutable classification state — writer history, copy
    /// histories, live update records, and every report counter — in a
    /// deterministic (sorted) order. Structure *registrations* and the
    /// passive instruments (lineage, home stats) are not serialized: the
    /// restore target is built by the same install path, which re-registers
    /// structures identically, and instruments restart fresh (checkpoints
    /// are taken on obs-off runs; windowed replay turns instruments on
    /// after restore).
    pub fn encode_state(&self, w: &mut SnapWriter) {
        w.bool(self.finished);
        let mut lw: Vec<(Addr, NodeId, Cycle)> =
            self.last_writer.iter().map(|(&a, &(n, c))| (a, n, c)).collect();
        lw.sort_by_key(|&(a, _, _)| a);
        w.usize(lw.len());
        for (a, n, c) in lw {
            w.u32(a);
            w.usize(n);
            w.u64(c);
        }
        let mut cp: Vec<((NodeId, BlockAddr), CopyHistory)> =
            self.copies.iter().map(|(&k, &v)| (k, v)).collect();
        cp.sort_by_key(|&(k, _)| k);
        w.usize(cp.len());
        for ((n, b), h) in cp {
            w.usize(n);
            w.u32(b.0);
            w.bool(h.ever_cached);
            match h.lost {
                None => w.bool(false),
                Some((cycle, cause)) => {
                    w.bool(true);
                    w.u64(cycle);
                    match cause {
                        LossCause::External { word_addr, writer } => {
                            w.u8(0);
                            w.u32(word_addr);
                            w.usize(writer);
                        }
                        LossCause::Eviction => w.u8(1),
                        LossCause::SelfInvalidate => w.u8(2),
                    }
                }
            }
        }
        type LiveUpdateRow = ((NodeId, BlockAddr), Vec<(usize, UpdateRec)>);
        let mut lu: Vec<LiveUpdateRow> = self
            .live_updates
            .iter()
            .map(|(&k, recs)| {
                let mut recs: Vec<(usize, UpdateRec)> = recs.iter().map(|(&widx, &r)| (widx, r)).collect();
                recs.sort_by_key(|&(widx, _)| widx);
                (k, recs)
            })
            .collect();
        lu.sort_by_key(|&(k, _)| k);
        w.usize(lu.len());
        for ((n, b), recs) in lu {
            w.usize(n);
            w.u32(b.0);
            w.usize(recs.len());
            for (widx, rec) in recs {
                w.usize(widx);
                w.bool(rec.block_referenced);
            }
        }
        encode_report(w, &self.report);
    }

    /// Restores state captured by [`Classifier::encode_state`] into a
    /// classifier built by the same install path (same geometry, same
    /// structure registrations — enforced by a `by_structure` length check).
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.finished = r.bool()?;
        self.last_writer.clear();
        for _ in 0..r.usize()? {
            let a = r.u32()?;
            let n = r.usize()?;
            let c = r.u64()?;
            self.last_writer.insert(a, (n, c));
        }
        self.copies.clear();
        for _ in 0..r.usize()? {
            let n = r.usize()?;
            let b = BlockAddr(r.u32()?);
            let ever_cached = r.bool()?;
            let lost = if r.bool()? {
                let cycle = r.u64()?;
                let cause = match r.u8()? {
                    0 => LossCause::External { word_addr: r.u32()?, writer: r.usize()? },
                    1 => LossCause::Eviction,
                    2 => LossCause::SelfInvalidate,
                    _ => return Err(SnapError::Corrupt("loss-cause tag")),
                };
                Some((cycle, cause))
            } else {
                None
            };
            self.copies.insert((n, b), CopyHistory { ever_cached, lost });
        }
        self.live_updates.clear();
        for _ in 0..r.usize()? {
            let n = r.usize()?;
            let b = BlockAddr(r.u32()?);
            let mut recs = HashMap::new();
            for _ in 0..r.usize()? {
                let widx = r.usize()?;
                recs.insert(widx, UpdateRec { block_referenced: r.bool()? });
            }
            self.live_updates.insert((n, b), recs);
        }
        decode_report(r, &mut self.report)
    }
}

fn encode_miss_stats(w: &mut SnapWriter, m: &MissStats) {
    for v in [m.cold, m.true_sharing, m.false_sharing, m.eviction, m.drop, m.exclusive_requests] {
        w.u64(v);
    }
}

fn decode_miss_stats(r: &mut SnapReader<'_>) -> Result<MissStats, SnapError> {
    Ok(MissStats {
        cold: r.u64()?,
        true_sharing: r.u64()?,
        false_sharing: r.u64()?,
        eviction: r.u64()?,
        drop: r.u64()?,
        exclusive_requests: r.u64()?,
    })
}

fn encode_update_stats(w: &mut SnapWriter, u: &UpdateStats) {
    for v in [u.true_sharing, u.false_sharing, u.proliferation, u.replacement, u.termination, u.drop] {
        w.u64(v);
    }
}

fn decode_update_stats(r: &mut SnapReader<'_>) -> Result<UpdateStats, SnapError> {
    Ok(UpdateStats {
        true_sharing: r.u64()?,
        false_sharing: r.u64()?,
        proliferation: r.u64()?,
        replacement: r.u64()?,
        termination: r.u64()?,
        drop: r.u64()?,
    })
}

/// Report counters travel by registration index; names come from the
/// restore target's own registrations.
fn encode_report(w: &mut SnapWriter, rep: &TrafficReport) {
    encode_miss_stats(w, &rep.misses);
    encode_update_stats(w, &rep.updates);
    w.u64(rep.shared_reads);
    w.u64(rep.shared_writes);
    w.u64(rep.shared_atomics);
    w.usize(rep.by_structure.len());
    for s in &rep.by_structure {
        encode_miss_stats(w, &s.misses);
        encode_update_stats(w, &s.updates);
    }
}

fn decode_report(r: &mut SnapReader<'_>, rep: &mut TrafficReport) -> Result<(), SnapError> {
    rep.misses = decode_miss_stats(r)?;
    rep.updates = decode_update_stats(r)?;
    rep.shared_reads = r.u64()?;
    rep.shared_writes = r.u64()?;
    rep.shared_atomics = r.u64()?;
    let n = r.usize()?;
    if n != rep.by_structure.len() {
        return Err(SnapError::Corrupt("structure registration count mismatch"));
    }
    for s in rep.by_structure.iter_mut() {
        s.misses = decode_miss_stats(r)?;
        s.updates = decode_update_stats(r)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classifier() -> Classifier {
        Classifier::new(Geometry::new(4))
    }

    const B: Addr = 0x1000; // block base
    const W0: Addr = 0x1000;
    const W1: Addr = 0x1004;

    #[test]
    fn first_touch_is_cold() {
        let mut c = classifier();
        assert_eq!(c.classify_miss(0, W0, 10), MissClass::Cold);
        assert_eq!(c.report().misses.cold, 1);
    }

    #[test]
    fn invalidation_on_same_word_is_true_sharing() {
        let mut c = classifier();
        c.classify_miss(0, W0, 0);
        c.copy_acquired(0, BlockAddr(B));
        // Node 1 writes W0; node 0's copy dies.
        c.word_written(1, W0, 100);
        c.copy_lost(0, BlockAddr(B), LossCause::External { word_addr: W0, writer: 1 }, 101);
        assert_eq!(c.classify_miss(0, W0, 200), MissClass::TrueSharing);
    }

    #[test]
    fn invalidation_on_other_word_is_false_sharing() {
        let mut c = classifier();
        c.classify_miss(0, W0, 0);
        c.copy_acquired(0, BlockAddr(B));
        c.word_written(1, W1, 100);
        c.copy_lost(0, BlockAddr(B), LossCause::External { word_addr: W1, writer: 1 }, 101);
        assert_eq!(c.classify_miss(0, W0, 200), MissClass::FalseSharing);
    }

    #[test]
    fn later_write_to_missed_word_upgrades_to_true_sharing() {
        let mut c = classifier();
        c.classify_miss(0, W0, 0);
        c.copy_acquired(0, BlockAddr(B));
        // Invalidated by a write to W1, but before node 0 re-reads W0,
        // node 2 also writes W0: the miss fetches genuinely new data.
        c.word_written(1, W1, 100);
        c.copy_lost(0, BlockAddr(B), LossCause::External { word_addr: W1, writer: 1 }, 101);
        c.word_written(2, W0, 150);
        assert_eq!(c.classify_miss(0, W0, 200), MissClass::TrueSharing);
    }

    #[test]
    fn own_write_does_not_make_true_sharing() {
        let mut c = classifier();
        c.classify_miss(0, W0, 0);
        c.copy_acquired(0, BlockAddr(B));
        c.word_written(1, W1, 100);
        c.copy_lost(0, BlockAddr(B), LossCause::External { word_addr: W1, writer: 1 }, 101);
        // Node 0's own (earlier) write to W0 is not evidence of sharing.
        c.word_written(0, W0, 150);
        assert_eq!(c.classify_miss(0, W0, 200), MissClass::FalseSharing);
    }

    #[test]
    fn eviction_and_drop_misses() {
        let mut c = classifier();
        c.classify_miss(0, W0, 0);
        c.copy_acquired(0, BlockAddr(B));
        c.copy_lost(0, BlockAddr(B), LossCause::Eviction, 10);
        assert_eq!(c.classify_miss(0, W0, 20), MissClass::Eviction);
        c.copy_acquired(0, BlockAddr(B));
        c.copy_lost(0, BlockAddr(B), LossCause::SelfInvalidate, 30);
        assert_eq!(c.classify_miss(0, W0, 40), MissClass::Drop);
    }

    #[test]
    fn update_consumed_by_reference_is_true_sharing() {
        let mut c = classifier();
        c.copy_acquired(0, BlockAddr(B));
        c.update_delivered(0, W0);
        c.word_referenced(0, W0);
        assert_eq!(c.report().updates.true_sharing, 1);
        assert_eq!(c.report().updates.total(), 1);
    }

    #[test]
    fn overwritten_unreferenced_update_is_proliferation() {
        let mut c = classifier();
        c.update_delivered(0, W0);
        c.update_delivered(0, W0); // overwrites the first
        assert_eq!(c.report().updates.proliferation, 1);
        c.finish();
        // The second record terminates.
        assert_eq!(c.report().updates.termination, 1);
    }

    #[test]
    fn overwritten_update_with_block_activity_is_false_sharing() {
        let mut c = classifier();
        c.update_delivered(0, W0);
        c.word_referenced(0, W1); // touches another word of the block
        c.update_delivered(0, W0);
        assert_eq!(c.report().updates.false_sharing, 1);
    }

    #[test]
    fn replaced_block_yields_replacement_updates() {
        let mut c = classifier();
        c.update_delivered(0, W0);
        c.update_delivered(0, W1);
        c.copy_lost(0, BlockAddr(B), LossCause::Eviction, 10);
        assert_eq!(c.report().updates.replacement, 2);
    }

    #[test]
    fn drop_update_classified_directly() {
        let mut c = classifier();
        c.update_delivered(0, W0);
        // The 4th update trips the threshold; protocol reports it directly
        // and invalidates the block.
        c.update_caused_drop(0, W1);
        c.copy_lost(0, BlockAddr(B), LossCause::SelfInvalidate, 10);
        let u = c.report().updates;
        assert_eq!(u.drop, 1);
        assert_eq!(u.proliferation, 1, "the older live record dies useless");
    }

    #[test]
    fn termination_vs_false_at_end() {
        let mut c = classifier();
        c.update_delivered(0, W0);
        c.update_delivered(1, W0);
        c.word_referenced(1, W1);
        c.finish();
        let u = c.report().updates;
        assert_eq!(u.termination, 1, "node 0's record never saw block activity");
        assert_eq!(u.false_sharing, 1, "node 1 touched the block elsewhere");
    }

    #[test]
    fn reference_only_consumes_matching_word() {
        let mut c = classifier();
        c.update_delivered(0, W0);
        c.word_referenced(0, W1);
        assert_eq!(c.report().updates.true_sharing, 0);
        c.word_referenced(0, W0);
        assert_eq!(c.report().updates.true_sharing, 1);
        // A second reference does not double count.
        c.word_referenced(0, W0);
        assert_eq!(c.report().updates.true_sharing, 1);
    }

    #[test]
    fn refill_clears_loss_record() {
        let mut c = classifier();
        c.classify_miss(0, W0, 0);
        c.copy_acquired(0, BlockAddr(B));
        c.copy_lost(0, BlockAddr(B), LossCause::Eviction, 5);
        c.classify_miss(0, W0, 10);
        c.copy_acquired(0, BlockAddr(B));
        // Copy present again; a (hypothetical) re-miss with no loss recorded
        // falls back to cold classification.
        assert_eq!(c.classify_miss(0, W0, 20), MissClass::Cold);
    }

    #[test]
    #[should_panic(expected = "finish called twice")]
    fn finish_twice_panics() {
        let mut c = classifier();
        c.finish();
        c.finish();
    }

    #[test]
    fn state_round_trips_and_resumes_identically() {
        // Build two classifiers through the same registration path, drive
        // one partway, checkpoint it into the other, then drive both through
        // identical further events: final reports must match exactly.
        let build = || {
            let mut c = Classifier::new(Geometry::new(4));
            c.register_structure("lock", B, 2);
            c
        };
        let mut a = build();
        let mut b = build();
        a.classify_miss(0, W0, 0);
        a.copy_acquired(0, BlockAddr(B));
        a.word_written(1, W0, 100);
        a.copy_lost(0, BlockAddr(B), LossCause::External { word_addr: W0, writer: 1 }, 101);
        a.copy_lost(2, BlockAddr(B), LossCause::Eviction, 102);
        a.update_delivered(0, W1);
        a.update_delivered(3, W0);
        a.count_read();
        a.count_write();
        a.count_atomic();

        let mut w = sim_engine::SnapWriter::new();
        a.encode_state(&mut w);
        let bytes = w.into_vec();
        let mut r = sim_engine::SnapReader::new(&bytes);
        b.restore_state(&mut r).expect("restore");
        r.finish().expect("no trailing bytes");

        // The re-encoded state is byte-identical (deterministic order).
        let mut w2 = sim_engine::SnapWriter::new();
        b.encode_state(&mut w2);
        assert_eq!(bytes, w2.into_vec(), "re-encode is byte-identical");

        for c in [&mut a, &mut b] {
            assert_eq!(c.classify_miss(0, W0, 200), MissClass::TrueSharing);
            c.word_referenced(0, W1); // consumes the live update
            c.classify_miss(2, W0, 210);
            c.finish();
        }
        assert_eq!(a.report().misses, b.report().misses);
        assert_eq!(a.report().updates, b.report().updates);
        assert_eq!(a.report().shared_reads, b.report().shared_reads);
        assert_eq!(a.report().by_structure[0].misses, b.report().by_structure[0].misses);
    }

    #[test]
    fn restore_rejects_structure_count_mismatch() {
        let mut a = Classifier::new(Geometry::new(4));
        a.register_structure("lock", B, 1);
        let mut w = sim_engine::SnapWriter::new();
        a.encode_state(&mut w);
        let bytes = w.into_vec();
        let mut plain = Classifier::new(Geometry::new(4)); // no registrations
        let mut r = sim_engine::SnapReader::new(&bytes);
        assert!(plain.restore_state(&mut r).is_err(), "registration paths differ");
    }

    #[test]
    fn touch_log_is_passive_and_drains_per_event() {
        let mut plain = classifier();
        let mut logged = classifier();
        logged.enable_touch_log();
        let mut drained = Vec::new();
        for c in [&mut plain, &mut logged] {
            c.classify_miss(0, W0, 0);
            c.copy_acquired(0, BlockAddr(B));
            c.word_written(1, W0, 100);
            c.copy_lost(0, BlockAddr(B), LossCause::External { word_addr: W0, writer: 1 }, 101);
            c.update_delivered(0, W1);
            c.word_referenced(0, W1);
            c.finish();
        }
        assert_eq!(plain.report().misses, logged.report().misses, "touch log is passive");
        assert_eq!(plain.report().updates, logged.report().updates, "touch log is passive");
        logged.drain_touch_log(&mut drained);
        assert_eq!(drained.len(), 6, "one touch per mutating hook");
        assert!(drained.iter().all(|&b| b == BlockAddr(B)));
        drained.clear();
        logged.drain_touch_log(&mut drained);
        assert!(drained.is_empty(), "draining clears the log");
        plain.drain_touch_log(&mut drained);
        assert!(drained.is_empty(), "no-op when logging is off");
    }

    #[test]
    fn lineage_is_passive_and_mirrors_balance() {
        let mut plain = classifier();
        let mut observed = classifier();
        observed.enable_lineage();
        for c in [&mut plain, &mut observed] {
            c.classify_miss(0, W0, 0);
            c.copy_acquired(0, BlockAddr(B));
            c.word_written(1, W0, 100);
            c.copy_lost(0, BlockAddr(B), LossCause::External { word_addr: W0, writer: 1 }, 101);
            c.classify_miss(0, W0, 200);
            c.update_delivered(0, W1);
            c.update_delivered(0, W1);
            c.exclusive_request(2, BlockAddr(B));
            c.finish();
        }
        assert_eq!(plain.report().misses, observed.report().misses);
        assert_eq!(plain.report().updates, observed.report().updates);
        let misses = observed.report().misses;
        let updates = observed.report().updates;
        let lin = observed.take_lineage().expect("lineage enabled");
        assert_eq!(lin.miss_totals(), misses, "per-block miss mirrors balance");
        assert_eq!(lin.update_totals(), updates, "per-block update mirrors balance");
        assert!(lin.blocks[0].provenance.is_some(), "true-sharing miss carries its chain");
    }
}

#[cfg(test)]
mod attribution_tests {
    use super::*;

    const B: Addr = 0x1000;

    #[test]
    fn traffic_attributes_to_registered_ranges() {
        let mut c = Classifier::new(Geometry::new(4));
        c.register_structure("counter", B, 1);
        c.register_structure("flag", B + 4, 1);
        // A miss on the counter word.
        c.classify_miss(0, B, 0);
        // An update on the flag word, consumed.
        c.update_delivered(1, B + 4);
        c.word_referenced(1, B + 4);
        // An update outside any range.
        c.update_delivered(1, B + 0x100);
        c.word_referenced(1, B + 0x100);
        let r = c.finish();
        assert_eq!(r.by_structure.len(), 2);
        assert_eq!(r.by_structure[0].name, "counter");
        assert_eq!(r.by_structure[0].misses.cold, 1);
        assert_eq!(r.by_structure[0].updates.total(), 0);
        assert_eq!(r.by_structure[1].name, "flag");
        assert_eq!(r.by_structure[1].updates.true_sharing, 1);
        // Global totals include the unattributed update.
        assert_eq!(r.updates.true_sharing, 2);
    }

    #[test]
    fn later_registration_wins_on_overlap() {
        let mut c = Classifier::new(Geometry::new(4));
        c.register_structure("whole-block", B, 16);
        c.register_structure("first-word", B, 1);
        c.classify_miss(0, B, 0); // first-word
        c.classify_miss(0, B + 4, 0); // whole-block
        let r = c.finish();
        assert_eq!(r.by_structure[1].misses.cold, 1, "first-word wins its overlap");
        assert_eq!(r.by_structure[0].misses.cold, 1, "rest of the block still attributed");
    }

    #[test]
    fn home_stats_mirror_update_totals() {
        let geom = Geometry::new(4);
        let mut plain = Classifier::new(geom);
        let mut observed = Classifier::new(geom);
        observed.enable_home_stats();
        for c in [&mut plain, &mut observed] {
            c.update_arrival(0, B, 1, false, 5);
            c.update_delivered(0, B);
            c.word_referenced(0, B);
            c.update_arrival(0, B + 4, 1, true, 6);
            c.update_caused_drop(0, B + 4);
            c.update_arrival(2, B + 8, 1, false, 7);
            c.update_delivered(2, B + 8); // survives to termination
            c.finish();
        }
        assert_eq!(plain.report().updates, observed.report().updates, "home stats are passive");
        let h = observed.take_home_stats().expect("home stats enabled");
        let mut merged = UpdateStats::default();
        for s in &h.classified {
            merged.merge(s);
        }
        assert_eq!(merged, observed.report().updates, "per-home buckets balance the totals");
        let home = geom.home_of(B);
        assert_eq!(h.deliveries[home], (2, 1), "applied and dropped arrivals bucket by home");
        assert!(observed.take_home_stats().is_none(), "taking detaches");
    }

    #[test]
    fn drop_and_termination_updates_attribute_too() {
        let mut c = Classifier::new(Geometry::new(4));
        c.register_structure("s", B, 16);
        c.update_delivered(0, B);
        c.update_caused_drop(0, B + 4);
        c.copy_lost(0, BlockAddr(B), LossCause::SelfInvalidate, 1);
        c.update_delivered(2, B + 8); // survives to the end
        let r = c.finish();
        let s = &r.by_structure[0];
        assert_eq!(s.updates.drop, 1);
        assert_eq!(s.updates.proliferation, 1);
        assert_eq!(s.updates.termination, 1);
    }
}

//! Differential observability: structured comparison of two runs.
//!
//! Every single-run instrument in this crate reconciles to exact closure
//! (stall accounts sum to the wall clock, the crit chain's composition
//! sums to the wall clock, journey stages sum to journey latency). This
//! module lifts that discipline to *pairs* of runs: [`ReportDelta`]
//! compares two [`ObsReport`]s section by section — stall-class and phase
//! cycle accounting, lineage sharing patterns and provenance counts,
//! crit-path decomposition and per-lock handoff splits, netobs journey
//! stages and per-home/per-link totals, hostobs dispatch categories and
//! PDES shard stats — as paired [`Counter`]s carrying both absolute and
//! relative deltas.
//!
//! The closure discipline carries over delta-wise:
//! [`ReportDelta::check_closure`] asserts that each section's deltas sum
//! to the section's total-cycle delta (the crit chain's class deltas sum
//! *exactly* to the wall-clock delta), mirroring
//! [`crate::crit::check_reconciliation`]. A run diffed against itself is
//! all-zeros ([`ReportDelta::is_zero`]).
//!
//! When both sides carry determinism fingerprints, the delta integrates
//! [`FingerprintChain::first_divergence`] to say *where* the two runs
//! stopped being the same; [`ReportDelta::attribution`] ranks the largest
//! cycle movements ("PU removed 2.1M remote-miss cycles from lock 0
//! handoffs") so the headline of a cross-protocol or cross-config
//! comparison reads off directly.

use std::collections::BTreeMap;

use crate::crit::CritReport;
use crate::hostobs::{DivergenceDetail, FingerprintChain, FingerprintDivergence, HostObsReport};
use crate::json::Json;
use crate::lineage::{LineageReport, SharingPattern};
use crate::netobs::{JourneyTotals, NetObsReport};
use crate::obs::{ObsReport, CPU_CLASSES};

/// One paired measurement: side A's value, side B's value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    /// The baseline (A) value.
    pub a: u64,
    /// The comparison (B) value.
    pub b: u64,
}

impl Counter {
    /// A pair.
    pub fn new(a: u64, b: u64) -> Self {
        Counter { a, b }
    }

    /// Absolute delta, `b - a`.
    pub fn delta(&self) -> i64 {
        self.b as i64 - self.a as i64
    }

    /// Relative delta `(b - a) / a`; `None` when the baseline is zero.
    pub fn rel(&self) -> Option<f64> {
        (self.a != 0).then(|| self.delta() as f64 / self.a as f64)
    }

    /// Whether both sides are equal.
    pub fn is_zero(&self) -> bool {
        self.a == self.b
    }

    /// Serializes as `{a, b, delta, rel?}`.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("a".to_string(), Json::U64(self.a)),
            ("b".to_string(), Json::U64(self.b)),
            ("delta".to_string(), json_i64(self.delta())),
        ];
        if let Some(r) = self.rel() {
            pairs.push(("rel".to_string(), Json::F64(r)));
        }
        Json::Obj(pairs)
    }

    /// `a -> b (delta, rel%)`, e.g. `123 -> 0 (-123, -100.0%)`.
    pub fn display(&self) -> String {
        match self.rel() {
            Some(r) => format!("{} -> {} ({:+}, {:+.1}%)", self.a, self.b, self.delta(), r * 100.0),
            None => format!("{} -> {} ({:+})", self.a, self.b, self.delta()),
        }
    }
}

fn json_i64(v: i64) -> Json {
    if v >= 0 {
        Json::U64(v as u64)
    } else {
        Json::F64(v as f64)
    }
}

/// One side of a diff: everything a run exposes to the comparison. The
/// machine layer builds this from its run result; tests can assemble it
/// from raw reports.
#[derive(Debug, Clone, Copy)]
pub struct RunSide<'a> {
    /// Display label ("WI", "PU", "baseline", a config digest, ...).
    pub label: &'a str,
    /// Total simulated cycles of the run.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// The run's observability report.
    pub obs: &'a ObsReport,
    /// Host self-profile, when the run carried one.
    pub host: Option<&'a HostObsReport>,
    /// Determinism fingerprint chain, when the run carried one.
    pub fingerprint: Option<&'a FingerprintChain>,
}

/// Sharing-pattern and provenance deltas from the lineage section.
#[derive(Debug, Clone, Default)]
pub struct LineageDelta {
    /// Blocks per sharing pattern.
    pub patterns: BTreeMap<&'static str, Counter>,
    /// Profiled blocks in total.
    pub blocks: Counter,
    /// Blocks carrying an invalidation→miss provenance chain.
    pub provenance_chains: Counter,
    /// Miss totals per class (keys from [`crate::MissStats::to_json`]).
    pub misses: BTreeMap<&'static str, Counter>,
    /// All misses (sum of the classes minus exclusive requests).
    pub miss_total: Counter,
    /// Update totals per class.
    pub updates: BTreeMap<&'static str, Counter>,
    /// All update messages.
    pub update_total: Counter,
    /// Invalidation messages observed by the ledger.
    pub invalidations: Counter,
    /// Update deliveries observed by the ledger.
    pub update_deliveries: Counter,
}

/// Per-lock handoff-split deltas.
#[derive(Debug, Clone)]
pub struct LockDelta {
    /// The lock id.
    pub lock: u32,
    /// Successful acquires.
    pub acquires: Counter,
    /// Handoffs.
    pub handoffs: Counter,
    /// Cycles held.
    pub hold_cycles: Counter,
    /// Queue wait (funded by predecessors' holds).
    pub queue_wait: Counter,
    /// Release-visibility share of the handoff window.
    pub release_visibility: Counter,
    /// Remote-miss share of the handoff window.
    pub remote_miss: Counter,
    /// Unclassified remainder of the handoff window.
    pub other: Counter,
    /// Total release→acquire cycles (the three shares above).
    pub handoff_cycles: Counter,
}

/// Per-barrier episode deltas.
#[derive(Debug, Clone)]
pub struct BarrierDelta {
    /// The barrier id.
    pub barrier: u32,
    /// Completed episodes.
    pub episodes: Counter,
    /// Summed arrival imbalance.
    pub imbalance_cycles: Counter,
    /// Summed release fanout.
    pub fanout_cycles: Counter,
}

/// Critical-path decomposition deltas.
#[derive(Debug, Clone, Default)]
pub struct CritDelta {
    /// Chain composition by stall class; delta-sums exactly to the
    /// wall-clock delta (the tightest closure equation of the diff).
    pub chain_classes: BTreeMap<&'static str, Counter>,
    /// Chain cycles per structure / sync-object label.
    pub chain_labels: BTreeMap<String, Counter>,
    /// Chain cycles per causal-edge kind.
    pub chain_edges: BTreeMap<String, Counter>,
    /// Per-lock handoff splits, by lock id.
    pub locks: Vec<LockDelta>,
    /// Per-barrier episodes, by barrier id.
    pub barriers: Vec<BarrierDelta>,
}

/// One journey-stage delta set (aggregate or per message class).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageDelta {
    /// Remote messages.
    pub count: Counter,
    /// Flits carried.
    pub flits: Counter,
    /// Cycles waiting for the transmit port.
    pub tx_wait: Counter,
    /// Cycles being serialized out.
    pub tx_service: Counter,
    /// Cycles on the wire.
    pub wire: Counter,
    /// Cycles waiting in receive contention.
    pub rx_wait: Counter,
    /// Summed end-to-end latency (the four stages above).
    pub latency: Counter,
}

impl StageDelta {
    fn from_totals(a: &JourneyTotals, b: &JourneyTotals) -> StageDelta {
        StageDelta {
            count: Counter::new(a.count, b.count),
            flits: Counter::new(a.flits, b.flits),
            tx_wait: Counter::new(a.tx_wait, b.tx_wait),
            tx_service: Counter::new(a.tx_service, b.tx_service),
            wire: Counter::new(a.wire, b.wire),
            rx_wait: Counter::new(a.rx_wait, b.rx_wait),
            latency: Counter::new(a.total.sum(), b.total.sum()),
        }
    }

    fn to_json(self) -> Json {
        Json::obj([
            ("count", self.count.to_json()),
            ("flits", self.flits.to_json()),
            ("tx_wait", self.tx_wait.to_json()),
            ("tx_service", self.tx_service.to_json()),
            ("wire", self.wire.to_json()),
            ("rx_wait", self.rx_wait.to_json()),
            ("latency", self.latency.to_json()),
        ])
    }
}

/// Per-home memory/update deltas.
#[derive(Debug, Clone)]
pub struct HomeDelta {
    /// The home node.
    pub node: usize,
    /// Flits received for blocks homed here.
    pub homed_rx_flits: Counter,
    /// Memory-module busy cycles.
    pub mem_busy: Counter,
    /// Updates this home fanned out.
    pub update_deliveries: Counter,
    /// Updates dropped (CU threshold).
    pub update_drops: Counter,
}

/// Per-physical-link flit deltas.
#[derive(Debug, Clone, Copy)]
pub struct LinkDelta {
    /// Upstream switch.
    pub src: usize,
    /// Downstream switch.
    pub dst: usize,
    /// Flits crossing the link.
    pub flits: Counter,
}

/// Network-telemetry deltas.
#[derive(Debug, Clone, Default)]
pub struct NetDelta {
    /// Aggregate journey stages over every remote message.
    pub totals: StageDelta,
    /// Journey stages per message class.
    pub by_class: BTreeMap<String, StageDelta>,
    /// Per-home profiles, by node.
    pub homes: Vec<HomeDelta>,
    /// Per-physical-link traffic (union of links live on either side).
    pub links: Vec<LinkDelta>,
    /// Messages delivered locally (no network crossing).
    pub local_messages: Counter,
}

/// One dispatch-category delta of the host self-profile.
#[derive(Debug, Clone)]
pub struct HostCatDelta {
    /// Category name (e.g. `proto-deliver`).
    pub name: &'static str,
    /// Handler invocations.
    pub calls: Counter,
    /// Wall nanoseconds inside the handler.
    pub nanos: Counter,
}

/// PDES sharded-core deltas.
#[derive(Debug, Clone)]
pub struct PdesDelta {
    /// Shards the cores ran with.
    pub shards: Counter,
    /// Lockstep epochs executed.
    pub epochs: Counter,
    /// Cross-shard events routed through handoff buffers.
    pub handoff_events: Counter,
    /// Cross-shard events scheduled directly (inside lookahead).
    pub direct_cross: Counter,
    /// Nanoseconds at epoch barriers.
    pub barrier_nanos: Counter,
}

/// Parallelism-observability deltas ([`crate::parobs`]), present when
/// both sides ran with touch recording on.
#[derive(Debug, Clone)]
pub struct ParObsDelta {
    /// Lookahead-aligned epochs recorded.
    pub epochs: Counter,
    /// Shared-state touch records logged.
    pub touch_records: Counter,
    /// Cross-shard conflicts under the actual plan.
    pub conflicts_total: Counter,
    /// Epochs with at least one conflict.
    pub serialized_epochs: Counter,
    /// Per-structure-kind conflicts, in [`crate::parobs::STRUCT_KINDS`]
    /// order.
    pub by_kind: Vec<(&'static str, Counter)>,
}

/// Host self-profile deltas.
#[derive(Debug, Clone, Default)]
pub struct HostDelta {
    /// Host wall time of the run.
    pub wall_nanos: Counter,
    /// Events committed.
    pub events: Counter,
    /// Per-dispatch-category splits.
    pub cats: Vec<HostCatDelta>,
    /// Sharded-core stats, when both sides ran sharded.
    pub pdes: Option<PdesDelta>,
    /// Parallelism-observability stats, when both sides recorded them.
    pub parobs: Option<ParObsDelta>,
}

/// Where two fingerprinted runs stopped being the same.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FingerprintCompare {
    /// One or both sides ran without a fingerprint chain.
    Absent,
    /// Chains are identical: the runs committed the same event stream.
    Identical,
    /// The chains diverged; says where (parameters, first epoch, or
    /// final state only).
    Diverged {
        /// The coarse divergence kind.
        at: FingerprintDivergence,
        /// Event-level localization of an epoch divergence: the divergent
        /// epoch's event-index range, plus the exact first divergent event
        /// when one stream ends inside that epoch. `None` for
        /// `Parameters`/`StateOnly` divergences.
        detail: Option<DivergenceDetail>,
    },
}

impl FingerprintCompare {
    /// One human-readable sentence: `absent`, `identical`, or a
    /// `diverged ...` description naming the epoch, its event-index
    /// range, and — when the chains pin it — the exact first divergent
    /// event. `obs_diff`'s text output and `obs_replay`'s header both
    /// print this.
    pub fn describe(&self) -> String {
        match self {
            FingerprintCompare::Absent => "absent".to_string(),
            FingerprintCompare::Identical => "identical (runs committed the same event stream)".to_string(),
            FingerprintCompare::Diverged { at, detail } => match (at, detail) {
                (FingerprintDivergence::Parameters, _) => {
                    "diverged: chains recorded with different epoch sizes".to_string()
                }
                (FingerprintDivergence::StateOnly, _) => {
                    "diverged: same event stream, final machine state differs".to_string()
                }
                (FingerprintDivergence::Epoch(i), None) => format!("diverged: first at epoch {i}"),
                (FingerprintDivergence::Epoch(_), Some(d)) => {
                    let mut s = format!(
                        "diverged: first at epoch {} (events [{}, {}))",
                        d.epoch, d.event_lo, d.event_hi
                    );
                    if let (Some(first), Some(in_epoch)) = (d.first_event, d.in_epoch) {
                        s.push_str(&format!(", first divergent event {first} ({in_epoch} into the epoch)"));
                    }
                    s
                }
            },
        }
    }
}

/// One ranked row of the attribution: a section/key pair and how many
/// cycles moved between the sides.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// The section the cycles belong to ("crit-path", "lock 0 handoffs",
    /// "journey Update", "stall-class", ...).
    pub section: String,
    /// The component within the section ("remote-miss", "tx-wait", ...).
    pub key: String,
    /// The paired measurement.
    pub counter: Counter,
}

impl Attribution {
    /// A human sentence, e.g. `PU removed 2100000 remote-miss cycles from
    /// lock 0 handoffs (123456 -> 0)`.
    pub fn sentence(&self, label_b: &str) -> String {
        let d = self.counter.delta();
        let verb = if d < 0 { "removed" } else { "added" };
        format!(
            "{label_b} {verb} {} {} cycles {} {} ({} -> {})",
            d.unsigned_abs(),
            self.key,
            if d < 0 { "from" } else { "to" },
            self.section,
            self.counter.a,
            self.counter.b
        )
    }
}

/// The structured comparison of two observed runs.
#[derive(Debug, Clone)]
pub struct ReportDelta {
    /// Label of side A (the baseline).
    pub label_a: String,
    /// Label of side B (the comparison).
    pub label_b: String,
    /// Node counts (sides may differ; closure accounts for it).
    pub procs: Counter,
    /// Wall clocks — the total-cycle delta every section closes against.
    pub wall: Counter,
    /// Instructions retired.
    pub instructions: Counter,
    /// Stall-class cycle accounts summed over nodes; per side each class
    /// column sums to `procs * wall`.
    pub classes: BTreeMap<&'static str, Counter>,
    /// Per-phase cycle totals (summed over nodes), by phase label.
    pub phases: BTreeMap<String, Counter>,
    /// Protocol messages by kind.
    pub msgs: BTreeMap<String, Counter>,
    /// Lineage section, when both sides carried one.
    pub lineage: Option<LineageDelta>,
    /// Crit-path section, when both sides carried one.
    pub crit: Option<CritDelta>,
    /// Netobs section, when both sides carried one.
    pub net: Option<NetDelta>,
    /// Host self-profile section, when both sides carried one.
    pub host: Option<HostDelta>,
    /// Fingerprint-chain comparison.
    pub fingerprint: FingerprintCompare,
}

fn merged_keys<'k, V>(a: &'k BTreeMap<String, V>, b: &'k BTreeMap<String, V>) -> Vec<&'k String> {
    let mut keys: Vec<&String> = a.keys().chain(b.keys()).collect();
    keys.sort();
    keys.dedup();
    keys
}

fn lineage_delta(a: &LineageReport, b: &LineageReport) -> LineageDelta {
    let patterns_of = |r: &LineageReport| {
        let mut m: BTreeMap<&'static str, u64> = BTreeMap::new();
        for blk in &r.blocks {
            *m.entry(blk.pattern.name()).or_insert(0) += 1;
        }
        m
    };
    let (pa, pb) = (patterns_of(a), patterns_of(b));
    const PATTERNS: [SharingPattern; 5] = [
        SharingPattern::ReadOnly,
        SharingPattern::Private,
        SharingPattern::ProducerConsumer,
        SharingPattern::Migratory,
        SharingPattern::WideShared,
    ];
    let patterns = PATTERNS
        .iter()
        .map(|p| {
            let name = p.name();
            (name, Counter::new(pa.get(name).copied().unwrap_or(0), pb.get(name).copied().unwrap_or(0)))
        })
        .collect();
    let provenance = |r: &LineageReport| r.blocks.iter().filter(|b| b.provenance.is_some()).count() as u64;
    let (ma, mb) = (a.miss_totals(), b.miss_totals());
    let misses = BTreeMap::from([
        ("cold", Counter::new(ma.cold, mb.cold)),
        ("true_sharing", Counter::new(ma.true_sharing, mb.true_sharing)),
        ("false_sharing", Counter::new(ma.false_sharing, mb.false_sharing)),
        ("eviction", Counter::new(ma.eviction, mb.eviction)),
        ("drop", Counter::new(ma.drop, mb.drop)),
    ]);
    let (ua, ub) = (a.update_totals(), b.update_totals());
    let updates = BTreeMap::from([
        ("true_sharing", Counter::new(ua.true_sharing, ub.true_sharing)),
        ("false_sharing", Counter::new(ua.false_sharing, ub.false_sharing)),
        ("proliferation", Counter::new(ua.proliferation, ub.proliferation)),
        ("replacement", Counter::new(ua.replacement, ub.replacement)),
        ("termination", Counter::new(ua.termination, ub.termination)),
        ("drop", Counter::new(ua.drop, ub.drop)),
    ]);
    let sums = |r: &LineageReport| {
        let inv: u64 = r.blocks.iter().map(|b| b.invalidations).sum();
        let del: u64 = r.blocks.iter().map(|b| b.update_deliveries).sum();
        (inv, del)
    };
    let ((inv_a, del_a), (inv_b, del_b)) = (sums(a), sums(b));
    LineageDelta {
        patterns,
        blocks: Counter::new(a.blocks.len() as u64, b.blocks.len() as u64),
        provenance_chains: Counter::new(provenance(a), provenance(b)),
        misses,
        miss_total: Counter::new(ma.total_misses(), mb.total_misses()),
        updates,
        update_total: Counter::new(ua.total(), ub.total()),
        invalidations: Counter::new(inv_a, inv_b),
        update_deliveries: Counter::new(del_a, del_b),
    }
}

fn crit_delta(a: &CritReport, b: &CritReport, pl_a: &ObsReport, pl_b: &ObsReport) -> CritDelta {
    let chain_classes = CPU_CLASSES
        .map(|c| (c.name(), Counter::new(a.critical_path.by_class.get(c), b.critical_path.by_class.get(c))))
        .into_iter()
        .collect();
    let label_maps = (&a.critical_path.by_label, &b.critical_path.by_label);
    let chain_labels = merged_keys(label_maps.0, label_maps.1)
        .into_iter()
        .map(|k| {
            let get = |m: &BTreeMap<String, u64>| m.get(k).copied().unwrap_or(0);
            (k.clone(), Counter::new(get(label_maps.0), get(label_maps.1)))
        })
        .collect();
    let edges_of = |r: &CritReport| {
        r.critical_path.by_edge.iter().map(|(&e, &v)| (e.to_string(), v)).collect::<BTreeMap<_, _>>()
    };
    let (ea, eb) = (edges_of(a), edges_of(b));
    let chain_edges = merged_keys(&ea, &eb)
        .into_iter()
        .map(|k| (k.clone(), Counter::new(ea.get(k).copied().unwrap_or(0), eb.get(k).copied().unwrap_or(0))))
        .collect();
    // Phase labels (not raw ids) key the chain's phase composition in the
    // report JSON, so resolve ids through each side's own names.
    let _ = (pl_a, pl_b);
    let mut lock_ids: Vec<u32> =
        a.locks.iter().map(|l| l.lock).chain(b.locks.iter().map(|l| l.lock)).collect();
    lock_ids.sort_unstable();
    lock_ids.dedup();
    let locks = lock_ids
        .into_iter()
        .map(|id| {
            let get =
                |r: &CritReport, f: &dyn Fn(&crate::crit::LockReport) -> u64| r.lock(id).map(f).unwrap_or(0);
            let pair = |f: &dyn Fn(&crate::crit::LockReport) -> u64| Counter::new(get(a, f), get(b, f));
            LockDelta {
                lock: id,
                acquires: pair(&|l| l.acquires),
                handoffs: pair(&|l| l.handoffs),
                hold_cycles: pair(&|l| l.hold_cycles),
                queue_wait: pair(&|l| l.queue_wait),
                release_visibility: pair(&|l| l.release_visibility),
                remote_miss: pair(&|l| l.remote_miss),
                other: pair(&|l| l.other),
                handoff_cycles: pair(&|l| l.handoff_cycles()),
            }
        })
        .collect();
    let mut barrier_ids: Vec<u32> =
        a.barriers.iter().map(|x| x.barrier).chain(b.barriers.iter().map(|x| x.barrier)).collect();
    barrier_ids.sort_unstable();
    barrier_ids.dedup();
    let barriers = barrier_ids
        .into_iter()
        .map(|id| {
            let get = |r: &CritReport, f: &dyn Fn(&crate::crit::BarrierReport) -> u64| {
                r.barrier(id).map(f).unwrap_or(0)
            };
            let pair = |f: &dyn Fn(&crate::crit::BarrierReport) -> u64| Counter::new(get(a, f), get(b, f));
            BarrierDelta {
                barrier: id,
                episodes: pair(&|x| x.episodes),
                imbalance_cycles: pair(&|x| x.imbalance_cycles),
                fanout_cycles: pair(&|x| x.fanout_cycles),
            }
        })
        .collect();
    CritDelta { chain_classes, chain_labels, chain_edges, locks, barriers }
}

fn net_delta(a: &NetObsReport, b: &NetObsReport) -> NetDelta {
    let empty = JourneyTotals::default();
    let classes_of =
        |r: &NetObsReport| r.by_class.keys().map(|&k| (k.to_string(), ())).collect::<BTreeMap<String, ()>>();
    let (ca, cb) = (classes_of(a), classes_of(b));
    let by_class = merged_keys(&ca, &cb)
        .into_iter()
        .map(|k| {
            let ta = a.by_class.get(k.as_str()).unwrap_or(&empty);
            let tb = b.by_class.get(k.as_str()).unwrap_or(&empty);
            (k.clone(), StageDelta::from_totals(ta, tb))
        })
        .collect();
    let nodes = a.homes.len().max(b.homes.len());
    let homes = (0..nodes)
        .map(|n| {
            let get = |r: &NetObsReport, f: &dyn Fn(&crate::netobs::HomeProfile) -> u64| {
                r.homes.get(n).map(f).unwrap_or(0)
            };
            let pair = |f: &dyn Fn(&crate::netobs::HomeProfile) -> u64| Counter::new(get(a, f), get(b, f));
            HomeDelta {
                node: n,
                homed_rx_flits: pair(&|h| h.homed_rx_flits),
                mem_busy: pair(&|h| h.mem_busy),
                update_deliveries: pair(&|h| h.update_deliveries),
                update_drops: pair(&|h| h.update_drops),
            }
        })
        .collect();
    let link_map =
        |r: &NetObsReport| r.phys_links.iter().map(|l| ((l.src, l.dst), l.flits)).collect::<BTreeMap<_, _>>();
    let (la, lb) = (link_map(a), link_map(b));
    let mut link_keys: Vec<(usize, usize)> = la.keys().chain(lb.keys()).copied().collect();
    link_keys.sort_unstable();
    link_keys.dedup();
    let links = link_keys
        .into_iter()
        .map(|(src, dst)| LinkDelta {
            src,
            dst,
            flits: Counter::new(
                la.get(&(src, dst)).copied().unwrap_or(0),
                lb.get(&(src, dst)).copied().unwrap_or(0),
            ),
        })
        .collect();
    NetDelta {
        totals: StageDelta::from_totals(&a.totals(), &b.totals()),
        by_class,
        homes,
        links,
        local_messages: Counter::new(a.local_messages, b.local_messages),
    }
}

fn host_delta(a: &HostObsReport, b: &HostObsReport) -> HostDelta {
    let cats = crate::hostobs::HOST_CATS
        .iter()
        .map(|c| {
            let get = |r: &HostObsReport| {
                r.cats.iter().find(|x| x.name == c.name()).map(|x| (x.calls, x.nanos)).unwrap_or((0, 0))
            };
            let ((calls_a, nanos_a), (calls_b, nanos_b)) = (get(a), get(b));
            HostCatDelta {
                name: c.name(),
                calls: Counter::new(calls_a, calls_b),
                nanos: Counter::new(nanos_a, nanos_b),
            }
        })
        .collect();
    let pdes = match (&a.pdes, &b.pdes) {
        (Some(pa), Some(pb)) => Some(PdesDelta {
            shards: Counter::new(pa.shards as u64, pb.shards as u64),
            epochs: Counter::new(pa.epochs, pb.epochs),
            handoff_events: Counter::new(pa.handoff_events, pb.handoff_events),
            direct_cross: Counter::new(pa.direct_cross, pb.direct_cross),
            barrier_nanos: Counter::new(pa.barrier_nanos, pb.barrier_nanos),
        }),
        _ => None,
    };
    let parobs = match (&a.parobs, &b.parobs) {
        (Some(pa), Some(pb)) => Some(ParObsDelta {
            epochs: Counter::new(pa.epochs, pb.epochs),
            touch_records: Counter::new(pa.touch_records, pb.touch_records),
            conflicts_total: Counter::new(pa.conflicts_total, pb.conflicts_total),
            serialized_epochs: Counter::new(pa.serialized_epochs, pb.serialized_epochs),
            by_kind: crate::parobs::STRUCT_KINDS
                .iter()
                .enumerate()
                .map(|(i, &k)| (k.name(), Counter::new(pa.conflicts_by_kind[i], pb.conflicts_by_kind[i])))
                .collect(),
        }),
        _ => None,
    };
    HostDelta {
        wall_nanos: Counter::new(a.wall_nanos, b.wall_nanos),
        events: Counter::new(a.events, b.events),
        cats,
        pdes,
        parobs,
    }
}

impl ReportDelta {
    /// Compares side `b` against baseline `a`, section by section.
    /// Optional sections (lineage, crit, netobs, host) diff only when both
    /// sides carry them; [`ReportDelta::check_closure`] then validates the
    /// per-section sum equations.
    pub fn between(a: &RunSide, b: &RunSide) -> ReportDelta {
        let (oa, ob) = (a.obs, b.obs);
        let classes = CPU_CLASSES
            .map(|c| {
                let sum = |o: &ObsReport| o.per_node.iter().map(|n| n.cycles.get(c)).sum::<u64>();
                (c.name(), Counter::new(sum(oa), sum(ob)))
            })
            .into_iter()
            .collect();
        let phases_of = |o: &ObsReport| {
            o.phase_totals
                .iter()
                .map(|(&p, acct)| (o.phase_label(p), acct.total()))
                .collect::<BTreeMap<String, u64>>()
        };
        let (pa, pb) = (phases_of(oa), phases_of(ob));
        let phases = merged_keys(&pa, &pb)
            .into_iter()
            .map(|k| {
                (k.clone(), Counter::new(pa.get(k).copied().unwrap_or(0), pb.get(k).copied().unwrap_or(0)))
            })
            .collect();
        let msgs_of = |o: &ObsReport| {
            o.msg_counts.iter().map(|(&k, &v)| (k.to_string(), v)).collect::<BTreeMap<_, _>>()
        };
        let (ma, mb) = (msgs_of(oa), msgs_of(ob));
        let msgs = merged_keys(&ma, &mb)
            .into_iter()
            .map(|k| {
                (k.clone(), Counter::new(ma.get(k).copied().unwrap_or(0), mb.get(k).copied().unwrap_or(0)))
            })
            .collect();
        let fingerprint = match (a.fingerprint, b.fingerprint) {
            (Some(fa), Some(fb)) => match fa.first_divergence(fb) {
                None => FingerprintCompare::Identical,
                Some(at) => FingerprintCompare::Diverged { at, detail: fa.divergence_detail(fb) },
            },
            _ => FingerprintCompare::Absent,
        };
        ReportDelta {
            label_a: a.label.to_string(),
            label_b: b.label.to_string(),
            procs: Counter::new(oa.per_node.len() as u64, ob.per_node.len() as u64),
            wall: Counter::new(oa.wall_cycles, ob.wall_cycles),
            instructions: Counter::new(a.instructions, b.instructions),
            classes,
            phases,
            msgs,
            lineage: match (&oa.lineage, &ob.lineage) {
                (Some(la), Some(lb)) => Some(lineage_delta(la, lb)),
                _ => None,
            },
            crit: match (&oa.crit, &ob.crit) {
                (Some(ca), Some(cb)) => Some(crit_delta(ca, cb, oa, ob)),
                _ => None,
            },
            net: match (&oa.netobs, &ob.netobs) {
                (Some(na), Some(nb)) => Some(net_delta(na, nb)),
                _ => None,
            },
            host: match (a.host, b.host) {
                (Some(ha), Some(hb)) => Some(host_delta(ha, hb)),
                _ => None,
            },
            fingerprint,
        }
    }

    /// Node-cycle totals per side: `procs * wall`, the quantity the
    /// stall-class and phase sections must sum to.
    fn node_cycles(&self) -> Counter {
        Counter::new(self.procs.a * self.wall.a, self.procs.b * self.wall.b)
    }

    /// Checks the delta's closure equations — the differential mirror of
    /// [`crate::crit::check_reconciliation`] / `check_net_reconciliation`.
    /// Every section's deltas must sum to that section's total-cycle
    /// delta; the crit chain's class deltas must sum exactly to the
    /// wall-clock delta. Returns the first violation.
    pub fn check_closure(&self) -> Result<(), String> {
        let nc = self.node_cycles();
        let class_sum =
            Counter::new(self.classes.values().map(|c| c.a).sum(), self.classes.values().map(|c| c.b).sum());
        if class_sum != nc {
            return Err(format!(
                "stall classes sum to {}/{}, node cycles are {}/{}",
                class_sum.a, class_sum.b, nc.a, nc.b
            ));
        }
        if class_sum.delta() != nc.delta() {
            return Err("stall-class deltas do not sum to the node-cycle delta".to_string());
        }
        let phase_sum =
            Counter::new(self.phases.values().map(|c| c.a).sum(), self.phases.values().map(|c| c.b).sum());
        if phase_sum != nc {
            return Err(format!(
                "phase totals sum to {}/{}, node cycles are {}/{}",
                phase_sum.a, phase_sum.b, nc.a, nc.b
            ));
        }
        if let Some(crit) = &self.crit {
            let chain_sum = Counter::new(
                crit.chain_classes.values().map(|c| c.a).sum(),
                crit.chain_classes.values().map(|c| c.b).sum(),
            );
            if chain_sum != self.wall {
                return Err(format!(
                    "crit chain classes sum to {}/{}, wall is {}/{}",
                    chain_sum.a, chain_sum.b, self.wall.a, self.wall.b
                ));
            }
            if chain_sum.delta() != self.wall.delta() {
                return Err("crit chain class deltas do not sum to the wall-clock delta".to_string());
            }
            for l in &crit.locks {
                let split = Counter::new(
                    l.release_visibility.a + l.remote_miss.a + l.other.a,
                    l.release_visibility.b + l.remote_miss.b + l.other.b,
                );
                if split != l.handoff_cycles {
                    return Err(format!(
                        "lock {} handoff split sums to {}/{}, handoff cycles are {}/{}",
                        l.lock, split.a, split.b, l.handoff_cycles.a, l.handoff_cycles.b
                    ));
                }
            }
        }
        if let Some(lineage) = &self.lineage {
            let miss_sum = Counter::new(
                lineage.misses.values().map(|c| c.a).sum(),
                lineage.misses.values().map(|c| c.b).sum(),
            );
            if miss_sum != lineage.miss_total {
                return Err("lineage miss classes do not sum to the miss total".to_string());
            }
            let upd_sum = Counter::new(
                lineage.updates.values().map(|c| c.a).sum(),
                lineage.updates.values().map(|c| c.b).sum(),
            );
            if upd_sum != lineage.update_total {
                return Err("lineage update classes do not sum to the update total".to_string());
            }
            let pattern_sum = Counter::new(
                lineage.patterns.values().map(|c| c.a).sum(),
                lineage.patterns.values().map(|c| c.b).sum(),
            );
            if pattern_sum != lineage.blocks {
                return Err("lineage pattern counts do not sum to the block count".to_string());
            }
        }
        if let Some(net) = &self.net {
            let stage_sum = |s: &StageDelta| {
                Counter::new(
                    s.tx_wait.a + s.tx_service.a + s.wire.a + s.rx_wait.a,
                    s.tx_wait.b + s.tx_service.b + s.wire.b + s.rx_wait.b,
                )
            };
            if stage_sum(&net.totals) != net.totals.latency {
                return Err("journey stages do not sum to journey latency".to_string());
            }
            let mut class_total = StageDelta::default();
            for s in net.by_class.values() {
                if stage_sum(s) != s.latency {
                    return Err("a journey class's stages do not sum to its latency".to_string());
                }
                class_total.count =
                    Counter::new(class_total.count.a + s.count.a, class_total.count.b + s.count.b);
                class_total.latency =
                    Counter::new(class_total.latency.a + s.latency.a, class_total.latency.b + s.latency.b);
            }
            if class_total.count != net.totals.count || class_total.latency != net.totals.latency {
                return Err("per-class journeys do not sum to the journey totals".to_string());
            }
        }
        Ok(())
    }

    /// Whether the diff is empty: every counter equal on both sides and
    /// the fingerprint chains (when present) identical. A run diffed
    /// against itself must satisfy this.
    pub fn is_zero(&self) -> bool {
        let base = self.procs.is_zero()
            && self.wall.is_zero()
            && self.instructions.is_zero()
            && self.classes.values().all(Counter::is_zero)
            && self.phases.values().all(Counter::is_zero)
            && self.msgs.values().all(Counter::is_zero);
        let lineage = self.lineage.as_ref().map_or(true, |l| {
            l.patterns.values().all(Counter::is_zero)
                && l.blocks.is_zero()
                && l.provenance_chains.is_zero()
                && l.misses.values().all(Counter::is_zero)
                && l.updates.values().all(Counter::is_zero)
                && l.invalidations.is_zero()
                && l.update_deliveries.is_zero()
        });
        let crit = self.crit.as_ref().map_or(true, |c| {
            c.chain_classes.values().all(Counter::is_zero)
                && c.chain_labels.values().all(Counter::is_zero)
                && c.chain_edges.values().all(Counter::is_zero)
                && c.locks.iter().all(|l| {
                    l.acquires.is_zero()
                        && l.handoffs.is_zero()
                        && l.hold_cycles.is_zero()
                        && l.queue_wait.is_zero()
                        && l.release_visibility.is_zero()
                        && l.remote_miss.is_zero()
                        && l.other.is_zero()
                })
                && c.barriers.iter().all(|b| {
                    b.episodes.is_zero() && b.imbalance_cycles.is_zero() && b.fanout_cycles.is_zero()
                })
        });
        let net = self.net.as_ref().map_or(true, |n| {
            let sd = |s: &StageDelta| {
                s.count.is_zero()
                    && s.flits.is_zero()
                    && s.tx_wait.is_zero()
                    && s.tx_service.is_zero()
                    && s.wire.is_zero()
                    && s.rx_wait.is_zero()
                    && s.latency.is_zero()
            };
            sd(&n.totals)
                && n.by_class.values().all(sd)
                && n.homes.iter().all(|h| {
                    h.homed_rx_flits.is_zero()
                        && h.mem_busy.is_zero()
                        && h.update_deliveries.is_zero()
                        && h.update_drops.is_zero()
                })
                && n.links.iter().all(|l| l.flits.is_zero())
                && n.local_messages.is_zero()
        });
        let fp = !matches!(self.fingerprint, FingerprintCompare::Diverged { .. });
        base && lineage && crit && net && fp
    }

    /// The ranked attribution: the largest cycle movements between the
    /// sides, most-moved first. Sources: crit-chain classes, per-lock
    /// handoff splits, barrier imbalance/fanout, aggregate stall classes,
    /// and journey stages per message class. At most `limit` rows, zero
    /// rows omitted.
    pub fn attribution(&self, limit: usize) -> Vec<Attribution> {
        let mut rows: Vec<Attribution> = Vec::new();
        let mut push = |section: String, key: String, counter: Counter| {
            if !counter.is_zero() {
                rows.push(Attribution { section, key, counter });
            }
        };
        for (&class, &c) in &self.classes {
            push("stall-class accounting".to_string(), format!("{class} stall"), c);
        }
        if let Some(crit) = &self.crit {
            for (&class, &c) in &crit.chain_classes {
                push("the critical path".to_string(), format!("{class} chain"), c);
            }
            for (label, &c) in &crit.chain_labels {
                push("the critical path".to_string(), format!("'{label}'"), c);
            }
            for l in &crit.locks {
                let sec = format!("lock {} handoffs", l.lock);
                push(sec.clone(), "remote-miss".to_string(), l.remote_miss);
                push(sec.clone(), "release-visibility".to_string(), l.release_visibility);
                push(sec.clone(), "queue-wait".to_string(), l.queue_wait);
                push(sec, "other".to_string(), l.other);
            }
            for b in &crit.barriers {
                let sec = format!("barrier {} episodes", b.barrier);
                push(sec.clone(), "imbalance".to_string(), b.imbalance_cycles);
                push(sec, "fanout".to_string(), b.fanout_cycles);
            }
        }
        if let Some(net) = &self.net {
            for (class, s) in &net.by_class {
                let sec = format!("{class} journeys");
                push(sec.clone(), "tx-wait".to_string(), s.tx_wait);
                push(sec.clone(), "tx-service".to_string(), s.tx_service);
                push(sec.clone(), "wire".to_string(), s.wire);
                push(sec, "rx-wait".to_string(), s.rx_wait);
            }
        }
        rows.sort_by_key(|r| std::cmp::Reverse(r.counter.delta().unsigned_abs()));
        rows.truncate(limit);
        rows
    }

    /// Serializes the whole delta.
    pub fn to_json(&self) -> Json {
        let map_json =
            |m: &BTreeMap<String, Counter>| Json::obj(m.iter().map(|(k, c)| (k.clone(), c.to_json())));
        let static_map_json =
            |m: &BTreeMap<&'static str, Counter>| Json::obj(m.iter().map(|(&k, c)| (k, c.to_json())));
        let mut pairs = vec![
            ("a".to_string(), Json::from(self.label_a.as_str())),
            ("b".to_string(), Json::from(self.label_b.as_str())),
            ("procs".to_string(), self.procs.to_json()),
            ("wall_cycles".to_string(), self.wall.to_json()),
            ("instructions".to_string(), self.instructions.to_json()),
            ("classes".to_string(), static_map_json(&self.classes)),
            ("phases".to_string(), map_json(&self.phases)),
            ("msg_counts".to_string(), map_json(&self.msgs)),
        ];
        if let Some(l) = &self.lineage {
            pairs.push((
                "lineage".to_string(),
                Json::obj([
                    ("patterns", static_map_json(&l.patterns)),
                    ("blocks", l.blocks.to_json()),
                    ("provenance_chains", l.provenance_chains.to_json()),
                    ("misses", static_map_json(&l.misses)),
                    ("miss_total", l.miss_total.to_json()),
                    ("updates", static_map_json(&l.updates)),
                    ("update_total", l.update_total.to_json()),
                    ("invalidations", l.invalidations.to_json()),
                    ("update_deliveries", l.update_deliveries.to_json()),
                ]),
            ));
        }
        if let Some(c) = &self.crit {
            let locks = c
                .locks
                .iter()
                .map(|l| {
                    Json::obj([
                        ("lock", Json::from(l.lock)),
                        ("acquires", l.acquires.to_json()),
                        ("handoffs", l.handoffs.to_json()),
                        ("hold_cycles", l.hold_cycles.to_json()),
                        ("queue_wait", l.queue_wait.to_json()),
                        ("release_visibility", l.release_visibility.to_json()),
                        ("remote_miss", l.remote_miss.to_json()),
                        ("other", l.other.to_json()),
                        ("handoff_cycles", l.handoff_cycles.to_json()),
                    ])
                })
                .collect();
            let barriers = c
                .barriers
                .iter()
                .map(|b| {
                    Json::obj([
                        ("barrier", Json::from(b.barrier)),
                        ("episodes", b.episodes.to_json()),
                        ("imbalance_cycles", b.imbalance_cycles.to_json()),
                        ("fanout_cycles", b.fanout_cycles.to_json()),
                    ])
                })
                .collect();
            pairs.push((
                "crit".to_string(),
                Json::obj([
                    ("chain_classes", static_map_json(&c.chain_classes)),
                    ("chain_labels", map_json(&c.chain_labels)),
                    ("chain_edges", map_json(&c.chain_edges)),
                    ("locks", Json::Arr(locks)),
                    ("barriers", Json::Arr(barriers)),
                ]),
            ));
        }
        if let Some(n) = &self.net {
            let homes = n
                .homes
                .iter()
                .map(|h| {
                    Json::obj([
                        ("node", Json::from(h.node)),
                        ("homed_rx_flits", h.homed_rx_flits.to_json()),
                        ("mem_busy", h.mem_busy.to_json()),
                        ("update_deliveries", h.update_deliveries.to_json()),
                        ("update_drops", h.update_drops.to_json()),
                    ])
                })
                .collect();
            let links = n
                .links
                .iter()
                .map(|l| {
                    Json::obj([
                        ("src", Json::from(l.src)),
                        ("dst", Json::from(l.dst)),
                        ("flits", l.flits.to_json()),
                    ])
                })
                .collect();
            pairs.push((
                "netobs".to_string(),
                Json::obj([
                    ("totals", n.totals.to_json()),
                    ("by_class", Json::obj(n.by_class.iter().map(|(k, s)| (k.clone(), s.to_json())))),
                    ("homes", Json::Arr(homes)),
                    ("links", Json::Arr(links)),
                    ("local_messages", n.local_messages.to_json()),
                ]),
            ));
        }
        if let Some(h) = &self.host {
            let cats = h
                .cats
                .iter()
                .map(|c| {
                    Json::obj([
                        ("cat", Json::from(c.name)),
                        ("calls", c.calls.to_json()),
                        ("nanos", c.nanos.to_json()),
                    ])
                })
                .collect();
            let mut host_pairs = vec![
                ("wall_nanos".to_string(), h.wall_nanos.to_json()),
                ("events".to_string(), h.events.to_json()),
                ("dispatch".to_string(), Json::Arr(cats)),
            ];
            if let Some(p) = &h.pdes {
                host_pairs.push((
                    "pdes".to_string(),
                    Json::obj([
                        ("shards", p.shards.to_json()),
                        ("epochs", p.epochs.to_json()),
                        ("handoff_events", p.handoff_events.to_json()),
                        ("direct_cross", p.direct_cross.to_json()),
                        ("barrier_nanos", p.barrier_nanos.to_json()),
                    ]),
                ));
            }
            if let Some(p) = &h.parobs {
                host_pairs.push((
                    "parobs".to_string(),
                    Json::obj([
                        ("epochs", p.epochs.to_json()),
                        ("touch_records", p.touch_records.to_json()),
                        ("conflicts_total", p.conflicts_total.to_json()),
                        ("serialized_epochs", p.serialized_epochs.to_json()),
                        ("conflicts_by_kind", Json::obj(p.by_kind.iter().map(|(k, c)| (*k, c.to_json())))),
                    ]),
                ));
            }
            pairs.push(("host".to_string(), Json::Obj(host_pairs)));
        }
        pairs.push((
            "fingerprint".to_string(),
            match &self.fingerprint {
                FingerprintCompare::Absent => Json::from("absent"),
                FingerprintCompare::Identical => Json::from("identical"),
                FingerprintCompare::Diverged { at, detail } => {
                    let mut fields = vec![
                        ("status".to_string(), Json::from("diverged")),
                        ("at".to_string(), Json::from(format!("{at:?}"))),
                        ("describe".to_string(), Json::from(self.fingerprint.describe())),
                    ];
                    if let Some(d) = detail {
                        fields.push(("epoch".to_string(), Json::U64(d.epoch as u64)));
                        fields.push(("event_lo".to_string(), Json::U64(d.event_lo)));
                        fields.push(("event_hi".to_string(), Json::U64(d.event_hi)));
                        if let Some(e) = d.first_event {
                            fields.push(("first_event".to_string(), Json::U64(e)));
                        }
                        if let Some(e) = d.in_epoch {
                            fields.push(("in_epoch".to_string(), Json::U64(e)));
                        }
                    }
                    Json::Obj(fields)
                }
            },
        ));
        pairs.push((
            "attribution".to_string(),
            Json::Arr(
                self.attribution(12)
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("section", Json::from(r.section.as_str())),
                            ("key", Json::from(r.key.as_str())),
                            ("counter", r.counter.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ));
        Json::Obj(pairs)
    }

    /// A human-readable comparison table (the `obs_diff` stdout format).
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let (la, lb) = (&self.label_a, &self.label_b);
        let _ = writeln!(out, "delta {la} -> {lb}:");
        let _ = writeln!(out, "  wall cycles:  {}", self.wall.display());
        let _ = writeln!(out, "  instructions: {}", self.instructions.display());
        let _ = writeln!(out, "  stall classes (cycles summed over {} nodes):", self.procs.b);
        for (class, c) in &self.classes {
            if !c.is_zero() || c.a > 0 {
                let _ = writeln!(out, "    {class:<13} {}", c.display());
            }
        }
        if self.phases.len() > 1 {
            let _ = writeln!(out, "  phases:");
            for (phase, c) in &self.phases {
                let _ = writeln!(out, "    {phase:<13} {}", c.display());
            }
        }
        if let Some(crit) = &self.crit {
            let _ = writeln!(out, "  critical path (chain classes; deltas close to the wall delta):");
            for (class, c) in &crit.chain_classes {
                if c.a > 0 || c.b > 0 {
                    let _ = writeln!(out, "    {class:<13} {}", c.display());
                }
            }
            for l in &crit.locks {
                let _ = writeln!(out, "  lock {} handoffs: {}", l.lock, l.handoffs.display());
                let _ = writeln!(out, "    remote-miss handoff cycles        {}", l.remote_miss.display());
                let _ =
                    writeln!(out, "    release-visibility handoff cycles {}", l.release_visibility.display());
                let _ = writeln!(out, "    queue-wait cycles                 {}", l.queue_wait.display());
                let _ = writeln!(out, "    other handoff cycles              {}", l.other.display());
            }
            for b in &crit.barriers {
                let _ = writeln!(
                    out,
                    "  barrier {}: imbalance {} / fanout {}",
                    b.barrier,
                    b.imbalance_cycles.display(),
                    b.fanout_cycles.display()
                );
            }
        }
        if let Some(lin) = &self.lineage {
            let _ = writeln!(out, "  sharing patterns (blocks):");
            for (pattern, c) in &lin.patterns {
                if c.a > 0 || c.b > 0 {
                    let _ = writeln!(out, "    {pattern:<17} {}", c.display());
                }
            }
            let _ = writeln!(out, "    provenance chains {}", lin.provenance_chains.display());
            let _ = writeln!(out, "  misses: {}", lin.miss_total.display());
            let _ = writeln!(out, "  updates: {}", lin.update_total.display());
        }
        if let Some(net) = &self.net {
            let _ = writeln!(out, "  journeys (stage cycles; stages close to latency):");
            let t = &net.totals;
            let _ = writeln!(out, "    messages      {}", t.count.display());
            let _ = writeln!(out, "    tx-wait       {}", t.tx_wait.display());
            let _ = writeln!(out, "    tx-service    {}", t.tx_service.display());
            let _ = writeln!(out, "    wire          {}", t.wire.display());
            let _ = writeln!(out, "    rx-wait       {}", t.rx_wait.display());
        }
        if let Some(host) = &self.host {
            let _ = writeln!(out, "  host profile:");
            let _ = writeln!(out, "    events        {}", host.events.display());
            for c in &host.cats {
                if c.calls.a > 0 || c.calls.b > 0 {
                    let _ = writeln!(out, "    {:<13} {} calls", c.name, c.calls.display());
                }
            }
            if let Some(p) = &host.pdes {
                let _ = writeln!(
                    out,
                    "    pdes: shards {}, epochs {}, handoffs {}",
                    p.shards.display(),
                    p.epochs.display(),
                    p.handoff_events.display()
                );
            }
            if let Some(p) = &host.parobs {
                let _ = writeln!(
                    out,
                    "    parobs: conflicts {}, serialized epochs {}",
                    p.conflicts_total.display(),
                    p.serialized_epochs.display()
                );
            }
        }
        let _ = writeln!(out, "  fingerprint: {}", self.fingerprint.describe());
        let ranked = self.attribution(8);
        if !ranked.is_empty() {
            let _ = writeln!(out, "  attribution (largest cycle movements):");
            for r in &ranked {
                let _ = writeln!(out, "    {}", r.sentence(lb));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{CpuClass, EndpointPairFlits, NodeGauges, ObsCollector, ObsConfig};

    fn tiny_report(stall: u64) -> ObsReport {
        let mut c = ObsCollector::new(2, ObsConfig::enabled());
        c.count_msg("ReadShared", 30);
        c.transition(0, CpuClass::ReadStall, 10);
        c.transition(0, CpuClass::Busy, 10 + stall);
        c.transition(0, CpuClass::Halted, 90);
        c.transition(1, CpuClass::Halted, 80);
        c.finish(
            100,
            vec![NodeGauges::default(), NodeGauges::default()],
            vec![EndpointPairFlits { src: 0, dst: 1, flits: 8 }],
        )
    }

    #[test]
    fn self_diff_is_all_zeros() {
        let r = tiny_report(20);
        let side =
            RunSide { label: "A", cycles: 100, instructions: 50, obs: &r, host: None, fingerprint: None };
        let d = ReportDelta::between(&side, &side);
        assert!(d.is_zero(), "self-diff must be empty");
        d.check_closure().expect("self-diff closes");
        assert_eq!(d.fingerprint, FingerprintCompare::Absent);
        assert!(d.attribution(8).is_empty());
    }

    #[test]
    fn class_deltas_close_to_node_cycle_delta() {
        let (ra, rb) = (tiny_report(20), tiny_report(40));
        let a =
            RunSide { label: "A", cycles: 100, instructions: 50, obs: &ra, host: None, fingerprint: None };
        let b =
            RunSide { label: "B", cycles: 100, instructions: 55, obs: &rb, host: None, fingerprint: None };
        let d = ReportDelta::between(&a, &b);
        d.check_closure().expect("delta closes");
        assert!(!d.is_zero());
        assert_eq!(d.classes["ReadStall"].delta(), 20);
        assert_eq!(d.classes["Busy"].delta(), -20);
        let class_delta: i64 = d.classes.values().map(|c| c.delta()).sum();
        assert_eq!(class_delta, 0, "same wall clock: class deltas cancel");
        assert_eq!(d.instructions.delta(), 5);
        assert!(!d.attribution(8).is_empty());
        let json = d.to_json().render_pretty();
        assert!(Json::parse(&json).is_ok(), "delta JSON parses");
    }

    #[test]
    fn fingerprint_compare_describes_event_level_divergence() {
        let mk = |epochs: Vec<(u64, u64)>, total: u64| FingerprintChain {
            epoch_events: 512,
            epochs,
            total_events: total,
            state_digest: (1, 2),
        };
        // Shorter stream ends inside the divergent epoch: the detail pins
        // the exact first divergent event, and the sentence names it.
        let full = mk(vec![(1, 1), (2, 2), (3, 3)], 1400);
        let short = mk(vec![(1, 1), (2, 2), (9, 9)], 1100);
        let at = full.first_divergence(&short).expect("diverged");
        let detail = full.divergence_detail(&short);
        let cmp = FingerprintCompare::Diverged { at, detail };
        let s = cmp.describe();
        assert!(s.contains("epoch 2"), "{s}");
        assert!(s.contains("[1024, 1400)"), "{s}");
        assert!(s.contains("first divergent event 1100"), "{s}");
        assert!(s.contains("76 into the epoch"), "{s}");

        // Same-length divergence: only the epoch range is known.
        let b = mk(vec![(1, 1), (7, 7), (3, 3)], 1400);
        let at = full.first_divergence(&b).expect("diverged");
        let detail = full.divergence_detail(&b);
        let d = detail.expect("epoch-shaped divergence has a detail");
        assert_eq!((d.epoch, d.event_lo, d.event_hi), (1, 512, 1024));
        assert_eq!(d.first_event, None);
        let s = FingerprintCompare::Diverged { at, detail }.describe();
        assert!(s.contains("epoch 1") && !s.contains("first divergent event"), "{s}");

        assert_eq!(FingerprintCompare::Absent.describe(), "absent");
        assert!(FingerprintCompare::Identical.describe().contains("identical"));
    }

    #[test]
    fn counter_arithmetic() {
        let c = Counter::new(200, 50);
        assert_eq!(c.delta(), -150);
        assert_eq!(c.rel(), Some(-0.75));
        assert!(!c.is_zero());
        assert!(Counter::new(0, 0).rel().is_none());
        assert_eq!(c.display(), "200 -> 50 (-150, -75.0%)");
    }
}

//! Power-of-two latency histograms.

use sim_engine::Cycle;

/// A log₂-bucketed histogram of cycle latencies.
///
/// Bucket `k` holds samples in `[2^k, 2^(k+1))` (bucket 0 holds 0 and 1).
/// Cheap to record into (a `leading_zeros` and an increment), exact enough
/// for the simulator's latency-shape reporting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHist {
    buckets: [u64; 32],
    count: u64,
    sum: u64,
    max: Cycle,
}

impl LatencyHist {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, latency: Cycle) {
        let b = (64 - latency.max(1).leading_zeros() as usize - 1).min(31);
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += latency;
        self.max = self.max.max(latency);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact sum of all recorded samples (the histogram buckets are
    /// approximate, the sum is not).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Cycle {
        self.max
    }

    /// Upper bound of the bucket containing the `p`-quantile (`0.0..=1.0`).
    pub fn quantile_bound(&self, p: f64) -> Cycle {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (k, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                return 1u64 << (k + 1);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Decomposes the histogram into `(buckets, count, sum, max)` for
    /// external serialization (the sweep harness's on-disk result cache).
    pub fn to_raw_parts(&self) -> ([u64; 32], u64, u64, Cycle) {
        (self.buckets, self.count, self.sum, self.max)
    }

    /// Rebuilds a histogram from [`LatencyHist::to_raw_parts`] output.
    /// The parts are trusted verbatim; feeding back anything other than a
    /// `to_raw_parts` result produces a histogram that never existed.
    pub fn from_raw_parts(buckets: [u64; 32], count: u64, sum: u64, max: Cycle) -> Self {
        LatencyHist { buckets, count, sum, max }
    }

    /// `(bucket lower bound, sample count)` for each non-empty bucket.
    pub fn nonempty_buckets(&self) -> impl Iterator<Item = (Cycle, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(k, &n)| (if k == 0 { 0 } else { 1u64 << k }, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let mut h = LatencyHist::new();
        for v in [1u64, 2, 3, 100, 200] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 200);
        assert!((h.mean() - 61.2).abs() < 1e-9);
    }

    #[test]
    fn bucket_boundaries() {
        let mut h = LatencyHist::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        let buckets: Vec<_> = h.nonempty_buckets().collect();
        // 0 and 1 in bucket 0; 2 and 3 in bucket [2,4); 4 in [4,8).
        assert_eq!(buckets, vec![(0, 2), (2, 2), (4, 1)]);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = LatencyHist::new();
        for i in 0..1000u64 {
            h.record(i);
        }
        let q50 = h.quantile_bound(0.5);
        let q90 = h.quantile_bound(0.9);
        let q100 = h.quantile_bound(1.0);
        assert!(q50 <= q90 && q90 <= q100);
        assert!(q50 >= 256, "median of 0..1000 sits in the [512,1024) bucket region");
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = LatencyHist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile_bound(0.5), 0);
    }

    #[test]
    fn single_sample_quantiles_collapse_to_its_bucket() {
        let mut h = LatencyHist::new();
        h.record(7);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 7);
        assert_eq!(h.mean(), 7.0);
        // 7 sits in [4, 8); every quantile reports that bucket's upper bound.
        assert_eq!(h.quantile_bound(0.0), 8);
        assert_eq!(h.quantile_bound(0.5), 8);
        assert_eq!(h.quantile_bound(1.0), 8);
    }

    #[test]
    fn exact_powers_of_two_open_their_own_bucket() {
        // 2^k is the inclusive lower edge of bucket k; 2^k - 1 stays below.
        for k in 1..12 {
            let mut h = LatencyHist::new();
            h.record(1u64 << k);
            h.record((1u64 << k) - 1);
            let buckets: Vec<_> = h.nonempty_buckets().collect();
            let below = if k == 1 { 0 } else { 1u64 << (k - 1) };
            assert_eq!(buckets, vec![(below, 1), (1u64 << k, 1)], "edge at 2^{k}");
        }
    }

    #[test]
    fn quantile_at_exact_bucket_boundary() {
        let mut h = LatencyHist::new();
        // Two samples in bucket 0 ([0,2)), two in bucket 1 ([2,4)).
        for v in [1u64, 1, 2, 2] {
            h.record(v);
        }
        // p=0.5 is satisfied exactly by bucket 0's two samples...
        assert_eq!(h.quantile_bound(0.5), 2);
        // ...and one sample more crosses into bucket 1.
        assert_eq!(h.quantile_bound(0.75), 4);
        assert_eq!(h.quantile_bound(1.0), 4);
    }

    #[test]
    fn huge_samples_saturate_the_top_bucket() {
        let mut h = LatencyHist::new();
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        let buckets: Vec<_> = h.nonempty_buckets().collect();
        assert_eq!(buckets, vec![(1u64 << 31, 1)], "clamped to bucket 31");
        assert_eq!(h.quantile_bound(1.0), 1u64 << 32);
    }

    #[test]
    fn merge_adds() {
        let mut a = LatencyHist::new();
        a.record(10);
        let mut b = LatencyHist::new();
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1000);
    }
}

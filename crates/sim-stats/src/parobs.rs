//! Parallelism observability: shared-state touch tracing, epoch conflict
//! analytics, and what-if speedup projection for the sharded PDES core.
//!
//! ROADMAP item 1 (distribute the PDES commit loop) hinges on one
//! question: *which* globally shared state actually forces same-epoch
//! handlers to commit serially, and how much speedup remains once it is
//! split by shard? This module answers it the way the paper attributes
//! traffic to program constructs — by attributing serialization to the
//! structure that causes it.
//!
//! Three layers:
//!
//! * **Touch-set recording** ([`ParCollector::touch`]): every committed
//!   event's handler logs the shared structures it read or wrote — a
//!   classifier block, a receive-port server, a magic-sync cell, a
//!   directory/DRAM block, a write buffer — as per-node bitmasks inside
//!   the current lookahead-aligned epoch. Commutative report counters
//!   (global miss/update tallies) are deliberately excluded: they
//!   sum-reduce trivially and would drown the signal.
//! * **Epoch conflict analytics**: under a [`ShardPlan`], a structure
//!   *conflicts* in an epoch when events committed on two or more
//!   distinct shards touch it and at least one touch is a write — the
//!   exact condition under which a distributed commit loop would need
//!   cross-shard synchronization for it. Conflict counts are kept per
//!   structure kind with a closure invariant (per-kind counts sum to an
//!   independently tallied total), alongside per-shard load imbalance
//!   (max/mean and Gini over handler weight).
//! * **What-if projection**: the recorded epoch structure is replayed
//!   against hypothetical shard counts and both [`PlanShape`]s. A
//!   conflicted epoch executes serially (its full measured weight); a
//!   clean epoch executes in its heaviest shard's weight; measured mean
//!   barrier cost is added per epoch. The quotient against the serial
//!   weight is the projected speedup, and each point names the structure
//!   kind that serializes the most epochs ("magic-sync serializes 34% of
//!   epochs at 8 shards").
//!
//! Epochs here are fixed windows of `lookahead` cycles
//! (`cycle / lookahead`), which makes the recording identical between
//! serial and sharded runs; the live sharded core opens its windows at
//! the global minimum instead, so counts differ slightly from
//! [`crate::hostobs::PdesObs::epochs`] by construction. Weights are
//! measured per-handler nanoseconds when the host profiler is attached,
//! else committed-event counts (in which case barrier cost, a host-time
//! quantity, is left out of the projection).
//!
//! Everything is passive: the collector observes committed events and
//! never feeds back into the simulation, so parobs-on runs are
//! byte-identical to parobs-off runs (pinned by `tests/parobs.rs`).

use sim_engine::{Cycle, NodeId, ShardPlan};

use crate::json::Json;

/// The kinds of globally shared structures a committed handler can touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StructKind {
    /// A classifier per-block entry (last writers, copies, live updates).
    Classifier,
    /// A node's receive-port server (senders reserve rx service slots).
    RxPort,
    /// A magic-sync cell (idealized lock or barrier table entry).
    MagicSync,
    /// A directory/DRAM block at its home node.
    Directory,
    /// A node's write buffer.
    WriteBuffer,
}

/// Every structure kind, in display order.
pub const STRUCT_KINDS: [StructKind; 5] = [
    StructKind::Classifier,
    StructKind::RxPort,
    StructKind::MagicSync,
    StructKind::Directory,
    StructKind::WriteBuffer,
];

impl StructKind {
    /// Stable display name (also the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            StructKind::Classifier => "classifier",
            StructKind::RxPort => "rx-port",
            StructKind::MagicSync => "magic-sync",
            StructKind::Directory => "directory",
            StructKind::WriteBuffer => "write-buffer",
        }
    }

    fn index(self) -> usize {
        match self {
            StructKind::Classifier => 0,
            StructKind::RxPort => 1,
            StructKind::MagicSync => 2,
            StructKind::Directory => 3,
            StructKind::WriteBuffer => 4,
        }
    }
}

/// The node-partition shapes the projector evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanShape {
    /// [`ShardPlan::contiguous`] — the shape the live core runs.
    Contiguous,
    /// [`ShardPlan::round_robin`] — neighbours interleaved across shards.
    RoundRobin,
}

impl PlanShape {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            PlanShape::Contiguous => "contiguous",
            PlanShape::RoundRobin => "round-robin",
        }
    }

    /// Builds the node→shard map for this shape (the lookahead slot of
    /// the plan is irrelevant to partitioning and pinned to 1).
    fn shard_of(self, nodes: usize, shards: usize) -> Vec<usize> {
        let plan = match self {
            PlanShape::Contiguous => ShardPlan::contiguous(nodes, shards, 1),
            PlanShape::RoundRobin => ShardPlan::round_robin(nodes, shards, 1),
        };
        (0..nodes).map(|n| plan.shard_of(n)).collect()
    }
}

/// Identity of one shared structure instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StructId {
    /// What kind of structure it is.
    pub kind: StructKind,
    /// Instance discriminator: block base address (classifier,
    /// directory), owning node (rx-port, write buffer), or sync-cell id
    /// (magic-sync).
    pub id: u64,
    /// The node that would own this structure in a by-shard split (the
    /// block's home, the port/buffer's node); `None` for global
    /// magic-sync cells, which no shard owns.
    pub owner: Option<NodeId>,
}

/// One epoch-scoped touch record: which nodes' events read/wrote one
/// structure (bit `n` set = an event committed on node `n` touched it).
struct TouchRec {
    sid: StructId,
    read_mask: u64,
    write_mask: u64,
}

/// Per-candidate-plan accumulators, updated once per closed epoch. The
/// plan is fully described by `shard_of`; the shape a projection point
/// was requested under lives in `ParCollector::proj_sources`.
struct PlanAccum {
    shards: usize,
    shard_of: Vec<usize>,
    /// Cross-shard conflicts per structure kind.
    conflicts_by_kind: [u64; 5],
    /// Independently tallied conflict total (the closure counterpart).
    conflicts_total: u64,
    /// Epochs in which each kind had at least one conflict.
    serialized_by_kind: [u64; 5],
    /// Epochs with any conflict (executed serially in the projection).
    serialized_epochs: u64,
    /// Epochs in which each kind was the limiter (most conflicts).
    limiting_by_kind: [u64; 5],
    /// Conflicts attributed to the owning structure's shard; global
    /// (unowned) conflicts land in `global_conflicts`.
    owned_conflicts: Vec<u64>,
    global_conflicts: u64,
    /// Projected total weight: serialized epochs at full weight, clean
    /// epochs at their heaviest shard's weight.
    projected_weight: u64,
    /// Lifetime handler weight per shard.
    shard_weight: Vec<u64>,
    /// Lifetime committed events per shard.
    shard_events: Vec<u64>,
    /// Reusable per-epoch shard-weight scratch (hot path: one close per
    /// epoch per candidate plan, so no allocation is tolerable there).
    per_shard: Vec<u64>,
}

impl PlanAccum {
    fn new(shape: PlanShape, nodes: usize, shards: usize) -> Self {
        let shard_of = shape.shard_of(nodes, shards);
        let shards = shard_of.iter().copied().max().map_or(1, |m| m + 1);
        PlanAccum {
            shards,
            shard_of,
            conflicts_by_kind: [0; 5],
            conflicts_total: 0,
            serialized_by_kind: [0; 5],
            serialized_epochs: 0,
            limiting_by_kind: [0; 5],
            owned_conflicts: vec![0; shards],
            global_conflicts: 0,
            projected_weight: 0,
            shard_weight: vec![0; shards],
            shard_events: vec![0; shards],
            per_shard: vec![0; shards],
        }
    }

    /// Whether `rec` is a cross-shard conflict under this plan: at least
    /// one write, touched from two or more distinct shards.
    fn conflicts(&self, rec: &TouchRec) -> bool {
        if rec.write_mask == 0 {
            return false;
        }
        let mut m = rec.read_mask | rec.write_mask;
        let mut shards_seen = 0u64;
        while m != 0 {
            let n = m.trailing_zeros() as usize;
            m &= m - 1;
            shards_seen |= 1 << self.shard_of[n];
        }
        shards_seen.count_ones() >= 2
    }

    /// Closes one epoch. `active` holds only the nodes that committed
    /// events this epoch (hot epochs are a handful of events wide, far
    /// fewer than the machine's nodes); `candidates` indexes the touch
    /// records that satisfy the plan-independent conflict precondition (a
    /// write, two or more distinct nodes); `total` is the epoch's summed
    /// handler weight.
    fn close_epoch(
        &mut self,
        touches: &[TouchRec],
        candidates: &[usize],
        active: &[(usize, u64, u64)],
        total: u64,
    ) {
        // Lifetime per-shard weight/event totals are *not* updated here:
        // they are pure per-node sums, derived once at `finish` from the
        // collector's lifetime node tallies. The epoch close only needs
        // the plan-dependent quantities — the heaviest shard's weight and
        // the conflict counts.
        let heaviest_shard = if active.len() <= 8 {
            // Few active nodes (the common case): dedupe their shards in a
            // stack buffer instead of zeroing and scanning `per_shard`.
            let mut buf = [(usize::MAX, 0u64); 8];
            let mut k = 0;
            for &(n, w, _) in active {
                let s = self.shard_of[n];
                match buf[..k].iter_mut().find(|(sh, _)| *sh == s) {
                    Some(slot) => slot.1 += w,
                    None => {
                        buf[k] = (s, w);
                        k += 1;
                    }
                }
            }
            buf[..k].iter().map(|&(_, w)| w).max().unwrap_or(0)
        } else {
            self.per_shard.iter_mut().for_each(|x| *x = 0);
            for &(n, w, _) in active {
                self.per_shard[self.shard_of[n]] += w;
            }
            self.per_shard.iter().copied().max().unwrap_or(0)
        };
        if candidates.is_empty() {
            // Clean epoch: shards run concurrently, the heaviest wins.
            self.projected_weight += heaviest_shard;
            return;
        }
        let mut by_kind = [0u64; 5];
        // The closure counterpart: `direct` is a separate straight count,
        // never derived from the per-kind partition.
        let mut direct = 0u64;
        for &i in candidates {
            let rec = &touches[i];
            if self.conflicts(rec) {
                by_kind[rec.sid.kind.index()] += 1;
                direct += 1;
                match rec.sid.owner {
                    Some(owner) => self.owned_conflicts[self.shard_of[owner]] += 1,
                    None => self.global_conflicts += 1,
                }
            }
        }
        self.conflicts_total += direct;
        let mut any = false;
        for (k, &c) in by_kind.iter().enumerate() {
            self.conflicts_by_kind[k] += c;
            if c > 0 {
                self.serialized_by_kind[k] += 1;
                any = true;
            }
        }
        if any {
            self.serialized_epochs += 1;
            let limiter = (0..5).max_by_key(|&k| by_kind[k]).expect("five kinds");
            self.limiting_by_kind[limiter] += 1;
            // A conflicted epoch commits serially: full epoch weight.
            self.projected_weight += total;
        } else {
            // Clean epoch: shards run concurrently, the heaviest wins.
            self.projected_weight += heaviest_shard;
        }
    }
}

/// Configuration for the parallelism-observability layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParObsConfig {
    /// Whether touch recording is on (off by default: zero cost).
    pub enabled: bool,
    /// Hypothetical shard counts the what-if projector evaluates.
    pub what_if_shards: Vec<usize>,
}

impl Default for ParObsConfig {
    fn default() -> Self {
        ParObsConfig { enabled: false, what_if_shards: vec![2, 4, 8, 16] }
    }
}

/// The passive touch-set recorder the machine drives at every committed
/// event. See the module docs for the model.
pub struct ParCollector {
    nodes: usize,
    lookahead: Cycle,
    actual_shards: usize,
    weights_are_nanos: bool,
    /// The live epoch's touch records (merged by structure identity).
    touches: Vec<TouchRec>,
    cur_epoch: u64,
    cur_node: NodeId,
    epoch_node_weight: Vec<u64>,
    epoch_node_events: Vec<u64>,
    /// Nodes with events in the live epoch (maintained incrementally so
    /// closing an epoch never scans the full node range).
    epoch_active: Vec<usize>,
    /// Reusable scratch: `(node, weight, events)` of the closing epoch.
    active_scratch: Vec<(usize, u64, u64)>,
    /// Reusable scratch: indexes of plan-independent conflict candidates.
    candidate_scratch: Vec<usize>,
    /// Summed weight of batched single-node epochs (the dominant class at
    /// small lookaheads): one node committed everything, so no plan can
    /// see a conflict and every plan projects the identical full weight.
    /// Folded into every accumulator's projected weight at `finish`.
    solo_total: u64,
    epoch_open: bool,
    /// Lifetime tallies.
    epochs: u64,
    events: u64,
    touch_records: u64,
    touches_by_kind: [u64; 5],
    node_weight: Vec<u64>,
    node_events: Vec<u64>,
    serial_weight: u64,
    /// Accumulator 0 is the run's actual plan; the rest are what-ifs.
    accums: Vec<PlanAccum>,
    /// One entry per requested what-if projection point (shard count ×
    /// shape, in request order): the shape it was requested under and
    /// the accumulator that computes it (shared when plans coincide).
    proj_sources: Vec<(PlanShape, usize)>,
}

impl ParCollector {
    /// Creates a collector for a machine of `nodes` nodes running under a
    /// contiguous plan of `actual_shards` shards (1 = serial) with the
    /// given epoch `lookahead`. `weights_are_nanos` says whether
    /// [`ParCollector::end_event`] receives measured handler nanoseconds
    /// (host profiler on) or should fall back to event counting.
    pub fn new(
        nodes: usize,
        lookahead: Cycle,
        actual_shards: usize,
        weights_are_nanos: bool,
        what_if_shards: &[usize],
    ) -> Self {
        assert!(nodes > 0 && nodes <= 64, "touch masks cover up to 64 nodes, got {nodes}");
        assert!(lookahead >= 1, "lookahead must be at least 1 cycle");
        let mut accums = vec![PlanAccum::new(PlanShape::Contiguous, nodes, actual_shards.max(1))];
        let mut proj_sources = Vec::new();
        for &s in what_if_shards {
            for shape in [PlanShape::Contiguous, PlanShape::RoundRobin] {
                let cand = PlanAccum::new(shape, nodes, s.max(1));
                // Clamping (x16 on 8 nodes) and one-node-per-shard
                // degeneracy (contiguous ≡ round-robin at shards ==
                // nodes) collapse distinct requests onto identical
                // node→shard maps; every accumulator statistic is a pure
                // function of that map, so identical plans share one
                // accumulator and only the projection entry is repeated.
                let idx = match accums.iter().position(|a| a.shard_of == cand.shard_of) {
                    Some(i) => i,
                    None => {
                        accums.push(cand);
                        accums.len() - 1
                    }
                };
                proj_sources.push((shape, idx));
            }
        }
        ParCollector {
            nodes,
            lookahead,
            actual_shards: actual_shards.max(1),
            weights_are_nanos,
            touches: Vec::new(),
            cur_epoch: 0,
            cur_node: 0,
            epoch_node_weight: vec![0; nodes],
            epoch_node_events: vec![0; nodes],
            epoch_active: Vec::with_capacity(nodes),
            active_scratch: Vec::with_capacity(nodes),
            candidate_scratch: Vec::new(),
            solo_total: 0,
            epoch_open: false,
            epochs: 0,
            events: 0,
            touch_records: 0,
            touches_by_kind: [0; 5],
            node_weight: vec![0; nodes],
            node_events: vec![0; nodes],
            serial_weight: 0,
            accums,
            proj_sources,
        }
    }

    fn close_epoch(&mut self) {
        if !self.epoch_open {
            return;
        }
        self.epochs += 1;
        // Gather the epoch's active nodes (maintained by `begin_event`) and
        // the plan-independent conflict candidates once, so each candidate
        // plan's close touches only what this epoch actually used.
        self.active_scratch.clear();
        let mut total = 0u64;
        for &n in &self.epoch_active {
            let (w, e) = (self.epoch_node_weight[n], self.epoch_node_events[n]);
            self.active_scratch.push((n, w, e));
            total += w;
            self.epoch_node_weight[n] = 0;
            self.epoch_node_events[n] = 0;
        }
        self.epoch_active.clear();
        self.serial_weight += total;
        // A single-node epoch cannot conflict under any plan (every touch
        // mask is one bit) and projects its full weight everywhere: batch
        // it instead of walking the candidate plans.
        if let [(_, w, _)] = *self.active_scratch.as_slice() {
            self.solo_total += w;
            self.touches.clear();
            self.epoch_open = false;
            return;
        }
        self.candidate_scratch.clear();
        for (i, r) in self.touches.iter().enumerate() {
            if r.write_mask != 0 && (r.read_mask | r.write_mask).count_ones() >= 2 {
                self.candidate_scratch.push(i);
            }
        }
        for acc in &mut self.accums {
            acc.close_epoch(&self.touches, &self.candidate_scratch, &self.active_scratch, total);
        }
        self.touches.clear();
        self.epoch_open = false;
    }

    /// Opens the committed event: `node` is the node the handler runs on
    /// (the shard-determining node). Rolls the epoch window when `cycle`
    /// crosses a lookahead boundary.
    pub fn begin_event(&mut self, cycle: Cycle, node: NodeId) {
        let epoch = cycle / self.lookahead;
        if self.epoch_open && epoch != self.cur_epoch {
            self.close_epoch();
        }
        self.cur_epoch = epoch;
        self.cur_node = node;
        self.epoch_open = true;
        self.events += 1;
        if self.epoch_node_events[node] == 0 && self.epoch_node_weight[node] == 0 {
            self.epoch_active.push(node);
        }
        self.epoch_node_events[node] += 1;
        self.node_events[node] += 1;
    }

    /// Records that the open event's handler touched `kind`/`id`
    /// (`owner` = the node a by-shard split would give the structure to;
    /// `None` for global cells). `write` marks a mutation.
    pub fn touch(&mut self, kind: StructKind, id: u64, owner: Option<NodeId>, write: bool) {
        let bit = 1u64 << self.cur_node;
        self.touch_records += 1;
        self.touches_by_kind[kind.index()] += 1;
        let sid = StructId { kind, id, owner };
        if let Some(rec) = self.touches.iter_mut().find(|r| r.sid == sid) {
            rec.read_mask |= bit;
            if write {
                rec.write_mask |= bit;
            }
        } else {
            self.touches.push(TouchRec { sid, read_mask: bit, write_mask: if write { bit } else { 0 } });
        }
    }

    /// Closes the committed event, crediting its handler weight (measured
    /// nanoseconds when the host profiler is attached, else one event).
    pub fn end_event(&mut self, nanos: u64) {
        let w = if self.weights_are_nanos { nanos } else { 1 };
        self.epoch_node_weight[self.cur_node] += w;
        self.node_weight[self.cur_node] += w;
    }

    /// Seals the recording into a report. `barrier_nanos`/`barrier_epochs`
    /// are the live core's measured epoch-barrier totals (0/0 for serial
    /// runs: the projection then assumes free barriers and says so).
    pub fn finish(mut self, barrier_nanos: u64, barrier_epochs: u64) -> ParObsReport {
        self.close_epoch();
        // Lifetime per-shard loads are pure per-node sums, so they are
        // derived here, once, instead of being re-added at every epoch
        // close; batched single-node epochs contribute their full weight
        // to every plan's projection (no partitioning can split them).
        for acc in &mut self.accums {
            for (n, (&w, &e)) in self.node_weight.iter().zip(&self.node_events).enumerate() {
                let s = acc.shard_of[n];
                acc.shard_weight[s] += w;
                acc.shard_events[s] += e;
            }
            acc.projected_weight += self.solo_total;
        }
        let epochs = self.epochs;
        let frac = |n: u64| if epochs == 0 { 0.0 } else { n as f64 / epochs as f64 };
        let mean_barrier_nanos =
            if barrier_epochs == 0 { 0.0 } else { barrier_nanos as f64 / barrier_epochs as f64 };
        // Barrier cost is host time; it only composes with nano weights.
        let barrier_term = if self.weights_are_nanos { mean_barrier_nanos * epochs as f64 } else { 0.0 };

        let actual = &self.accums[0];
        let kinds = STRUCT_KINDS
            .iter()
            .map(|&k| {
                let i = k.index();
                KindStats {
                    kind: k,
                    touches: self.touches_by_kind[i],
                    conflicts: actual.conflicts_by_kind[i],
                    density: frac(actual.conflicts_by_kind[i]),
                    serial_fraction: frac(actual.serialized_by_kind[i]),
                }
            })
            .collect();
        let shard_load = (0..actual.shards)
            .map(|s| ShardLoad {
                shard: s,
                weight: actual.shard_weight[s],
                events: actual.shard_events[s],
                owned_conflicts: actual.owned_conflicts[s],
            })
            .collect::<Vec<_>>();
        let weights: Vec<u64> = shard_load.iter().map(|s| s.weight).collect();
        let (load_max_over_mean, load_gini) = imbalance(&weights);

        let projection = self
            .proj_sources
            .iter()
            .map(|&(shape, idx)| {
                let acc = &self.accums[idx];
                let projected = acc.projected_weight as f64 + barrier_term;
                let speedup = if projected <= 0.0 { 1.0 } else { self.serial_weight as f64 / projected };
                let limiter = (0..5).max_by_key(|&k| acc.limiting_by_kind[k]).expect("five kinds");
                let limiting = (acc.serialized_epochs > 0).then_some(STRUCT_KINDS[limiter]);
                ProjPoint {
                    shape,
                    shards: acc.shards,
                    speedup,
                    serialized_fraction: frac(acc.serialized_epochs),
                    conflicts_by_kind: acc.conflicts_by_kind,
                    conflicts_total: acc.conflicts_total,
                    limiting,
                    limiting_fraction: limiting.map_or(0.0, |k| frac(acc.serialized_by_kind[k.index()])),
                }
            })
            .collect();

        ParObsReport {
            nodes: self.nodes,
            lookahead: self.lookahead,
            shards: self.actual_shards,
            epochs,
            events: self.events,
            touch_records: self.touch_records,
            weights: if self.weights_are_nanos { "nanos" } else { "events" },
            serial_weight: self.serial_weight,
            mean_barrier_nanos,
            conflicts_by_kind: self.accums[0].conflicts_by_kind,
            conflicts_total: self.accums[0].conflicts_total,
            serialized_epochs: self.accums[0].serialized_epochs,
            global_conflicts: self.accums[0].global_conflicts,
            kinds,
            shard_load,
            load_max_over_mean,
            load_gini,
            projection,
        }
    }
}

/// `(max/mean, Gini)` over per-shard weights; `(1.0, 0.0)` when empty or
/// all-zero (perfect balance by convention).
fn imbalance(weights: &[u64]) -> (f64, f64) {
    let n = weights.len();
    let total: u64 = weights.iter().sum();
    if n == 0 || total == 0 {
        return (1.0, 0.0);
    }
    let mean = total as f64 / n as f64;
    let max = weights.iter().copied().max().unwrap_or(0) as f64;
    let mut abs_diff_sum = 0.0;
    for &a in weights {
        for &b in weights {
            abs_diff_sum += (a as f64 - b as f64).abs();
        }
    }
    let gini = abs_diff_sum / (2.0 * (n * n) as f64 * mean);
    (max / mean, gini)
}

/// Per-structure-kind conflict statistics under the run's actual plan.
#[derive(Debug, Clone)]
pub struct KindStats {
    /// The structure kind.
    pub kind: StructKind,
    /// Lifetime touch records of this kind.
    pub touches: u64,
    /// Cross-shard conflicts (one per conflicted structure per epoch).
    pub conflicts: u64,
    /// Conflicts per epoch.
    pub density: f64,
    /// Fraction of epochs this kind serializes (has ≥ 1 conflict in).
    pub serial_fraction: f64,
}

/// One shard's lifetime load under the run's actual plan.
#[derive(Debug, Clone)]
pub struct ShardLoad {
    /// The shard.
    pub shard: usize,
    /// Summed handler weight (nanos or events, per the report's unit).
    pub weight: u64,
    /// Committed events.
    pub events: u64,
    /// Conflicts on structures this shard would own.
    pub owned_conflicts: u64,
}

/// One point of the what-if speedup curve.
#[derive(Debug, Clone)]
pub struct ProjPoint {
    /// The partition shape evaluated.
    pub shape: PlanShape,
    /// Effective shard count (requested, clamped to the node count).
    pub shards: usize,
    /// Projected speedup over serial commit (≥ measured epochs only).
    pub speedup: f64,
    /// Fraction of epochs that execute serially (any conflict).
    pub serialized_fraction: f64,
    /// Conflicts per structure kind at this point.
    pub conflicts_by_kind: [u64; 5],
    /// Independently tallied total (closure counterpart).
    pub conflicts_total: u64,
    /// The kind limiting the most epochs; `None` when nothing conflicts.
    pub limiting: Option<StructKind>,
    /// Fraction of epochs the limiting kind serializes.
    pub limiting_fraction: f64,
}

impl ProjPoint {
    /// The grep-able curve sentence, e.g. `projection contiguous x8:
    /// speedup 3.41, magic-sync serializes 34.0% of epochs`.
    pub fn sentence(&self) -> String {
        let limiter = match self.limiting {
            Some(k) => format!("{} serializes {:.1}% of epochs", k.name(), self.limiting_fraction * 100.0),
            None => "no structure serializes any epoch".to_string(),
        };
        format!("projection {} x{}: speedup {:.2}, {}", self.shape.name(), self.shards, self.speedup, limiter)
    }
}

/// The sealed parallelism-observability report.
#[derive(Debug, Clone)]
pub struct ParObsReport {
    /// Simulated nodes.
    pub nodes: usize,
    /// Epoch window length in cycles.
    pub lookahead: Cycle,
    /// The run's actual (contiguous) shard count; 1 = serial.
    pub shards: usize,
    /// Closed epochs.
    pub epochs: u64,
    /// Committed events observed.
    pub events: u64,
    /// Touch records logged.
    pub touch_records: u64,
    /// Weight unit: `"nanos"` (host profiler attached) or `"events"`.
    pub weights: &'static str,
    /// Total handler weight (the serial-commit cost the curve divides).
    pub serial_weight: u64,
    /// Measured mean epoch-barrier cost (0 for serial runs).
    pub mean_barrier_nanos: f64,
    /// Conflicts per kind under the actual plan.
    pub conflicts_by_kind: [u64; 5],
    /// Independently tallied conflict total under the actual plan.
    pub conflicts_total: u64,
    /// Epochs with any conflict under the actual plan.
    pub serialized_epochs: u64,
    /// Conflicts on unowned (global) structures under the actual plan.
    pub global_conflicts: u64,
    /// Per-kind statistics under the actual plan.
    pub kinds: Vec<KindStats>,
    /// Per-shard load under the actual plan.
    pub shard_load: Vec<ShardLoad>,
    /// Max-over-mean shard load imbalance.
    pub load_max_over_mean: f64,
    /// Gini coefficient of shard load.
    pub load_gini: f64,
    /// The what-if speedup curve (every shape × shard count).
    pub projection: Vec<ProjPoint>,
}

impl ParObsReport {
    /// Asserts the conflict-count closure: per-kind conflicts sum to the
    /// independently tallied total, under the actual plan and at every
    /// projection point; owned + global conflicts partition the total
    /// the same way. Returns the first violation.
    pub fn check_closure(&self) -> Result<(), String> {
        let kind_sum: u64 = self.conflicts_by_kind.iter().sum();
        if kind_sum != self.conflicts_total {
            return Err(format!(
                "actual plan: per-kind conflicts sum to {kind_sum}, independent total is {}",
                self.conflicts_total
            ));
        }
        let owner_sum: u64 =
            self.shard_load.iter().map(|s| s.owned_conflicts).sum::<u64>() + self.global_conflicts;
        if owner_sum != self.conflicts_total {
            return Err(format!(
                "actual plan: owner-attributed conflicts sum to {owner_sum}, total is {}",
                self.conflicts_total
            ));
        }
        for p in &self.projection {
            let s: u64 = p.conflicts_by_kind.iter().sum();
            if s != p.conflicts_total {
                return Err(format!(
                    "projection {} x{}: per-kind conflicts sum to {s}, independent total is {}",
                    p.shape.name(),
                    p.shards,
                    p.conflicts_total
                ));
            }
        }
        Ok(())
    }

    /// The curve for one shape, shard-count ascending.
    pub fn curve(&self, shape: PlanShape) -> Vec<&ProjPoint> {
        let mut pts: Vec<&ProjPoint> = self.projection.iter().filter(|p| p.shape == shape).collect();
        pts.sort_by_key(|p| p.shards);
        pts
    }

    /// Serializes the whole report.
    pub fn to_json(&self) -> Json {
        let kinds = self
            .kinds
            .iter()
            .map(|k| {
                Json::obj([
                    ("kind", Json::from(k.kind.name())),
                    ("touches", Json::U64(k.touches)),
                    ("conflicts", Json::U64(k.conflicts)),
                    ("density", Json::F64(k.density)),
                    ("serial_fraction", Json::F64(k.serial_fraction)),
                ])
            })
            .collect();
        let shard_load = self
            .shard_load
            .iter()
            .map(|s| {
                Json::obj([
                    ("shard", Json::from(s.shard)),
                    ("weight", Json::U64(s.weight)),
                    ("events", Json::U64(s.events)),
                    ("owned_conflicts", Json::U64(s.owned_conflicts)),
                ])
            })
            .collect();
        let projection = self
            .projection
            .iter()
            .map(|p| {
                Json::obj([
                    ("shape", Json::from(p.shape.name())),
                    ("shards", Json::from(p.shards)),
                    ("speedup", Json::F64(p.speedup)),
                    ("serialized_fraction", Json::F64(p.serialized_fraction)),
                    (
                        "conflicts_by_kind",
                        Json::obj(
                            STRUCT_KINDS
                                .iter()
                                .map(|&k| (k.name(), Json::U64(p.conflicts_by_kind[k.index()]))),
                        ),
                    ),
                    ("conflicts_total", Json::U64(p.conflicts_total)),
                    ("limiting", p.limiting.map(|k| Json::from(k.name())).unwrap_or(Json::Null)),
                    ("limiting_fraction", Json::F64(p.limiting_fraction)),
                ])
            })
            .collect();
        Json::obj([
            ("nodes", Json::from(self.nodes)),
            ("lookahead", Json::U64(self.lookahead)),
            ("shards", Json::from(self.shards)),
            ("epochs", Json::U64(self.epochs)),
            ("events", Json::U64(self.events)),
            ("touch_records", Json::U64(self.touch_records)),
            ("weights", Json::from(self.weights)),
            ("serial_weight", Json::U64(self.serial_weight)),
            ("mean_barrier_nanos", Json::F64(self.mean_barrier_nanos)),
            ("conflicts_total", Json::U64(self.conflicts_total)),
            ("serialized_epochs", Json::U64(self.serialized_epochs)),
            ("global_conflicts", Json::U64(self.global_conflicts)),
            ("kinds", Json::Arr(kinds)),
            ("shard_load", Json::Arr(shard_load)),
            ("load_max_over_mean", Json::F64(self.load_max_over_mean)),
            ("load_gini", Json::F64(self.load_gini)),
            ("projection", Json::Arr(projection)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives one event on `node` at `cycle` touching `touches`, with
    /// weight `w`.
    fn event(
        c: &mut ParCollector,
        cycle: Cycle,
        node: NodeId,
        touches: &[(StructKind, u64, Option<NodeId>, bool)],
        w: u64,
    ) {
        c.begin_event(cycle, node);
        for &(kind, id, owner, write) in touches {
            c.touch(kind, id, owner, write);
        }
        c.end_event(w);
    }

    #[test]
    fn cross_shard_write_touch_is_a_conflict_and_closure_holds() {
        // 4 nodes, actual plan 2 contiguous shards {0,1}|{2,3}.
        let mut c = ParCollector::new(4, 10, 2, true, &[2, 4]);
        // Epoch 0: nodes 0 and 2 (different shards) write block 0x100.
        event(&mut c, 0, 0, &[(StructKind::Classifier, 0x100, Some(0), true)], 5);
        event(&mut c, 3, 2, &[(StructKind::Classifier, 0x100, Some(0), false)], 7);
        // Epoch 1: same-shard writes only — no conflict.
        event(&mut c, 10, 0, &[(StructKind::Classifier, 0x200, Some(1), true)], 4);
        event(&mut c, 12, 1, &[(StructKind::Classifier, 0x200, Some(1), true)], 6);
        // Epoch 2: cross-shard reads only — no conflict.
        event(&mut c, 20, 1, &[(StructKind::Directory, 0x300, Some(2), false)], 2);
        event(&mut c, 25, 3, &[(StructKind::Directory, 0x300, Some(2), false)], 2);
        let r = c.finish(0, 0);
        assert_eq!(r.epochs, 3);
        assert_eq!(r.events, 6);
        assert_eq!(r.conflicts_total, 1);
        assert_eq!(r.conflicts_by_kind[StructKind::Classifier.index()], 1);
        assert_eq!(r.serialized_epochs, 1);
        r.check_closure().expect("closure");
        // Owner attribution: block 0x100's owner is node 0 → shard 0.
        assert_eq!(r.shard_load[0].owned_conflicts, 1);
        assert_eq!(r.global_conflicts, 0);
        // Per-kind serial fraction: classifier serializes 1 of 3 epochs.
        let clf = &r.kinds[StructKind::Classifier.index()];
        assert!((clf.serial_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(clf.conflicts, 1);
    }

    #[test]
    fn global_cells_conflict_from_any_two_shards() {
        let mut c = ParCollector::new(4, 4, 2, false, &[]);
        event(&mut c, 0, 0, &[(StructKind::MagicSync, 9, None, true)], 1);
        event(&mut c, 1, 3, &[(StructKind::MagicSync, 9, None, true)], 1);
        let r = c.finish(0, 0);
        assert_eq!(r.conflicts_total, 1);
        assert_eq!(r.global_conflicts, 1);
        assert_eq!(r.conflicts_by_kind[StructKind::MagicSync.index()], 1);
        r.check_closure().expect("closure");
    }

    #[test]
    fn projection_speedup_reflects_conflict_free_parallelism() {
        // 4 nodes, perfectly balanced, never conflicting: the projected
        // speedup at 4 shards approaches 4 (no barrier cost recorded).
        let mut c = ParCollector::new(4, 1, 1, true, &[2, 4]);
        for cycle in 0..100u64 {
            for n in 0..4usize {
                event(&mut c, cycle, n, &[(StructKind::WriteBuffer, n as u64, Some(n), true)], 10);
            }
        }
        let r = c.finish(0, 0);
        assert_eq!(r.conflicts_total, 0);
        r.check_closure().expect("closure");
        for shape in [PlanShape::Contiguous, PlanShape::RoundRobin] {
            let curve = r.curve(shape);
            assert_eq!(curve.iter().map(|p| p.shards).collect::<Vec<_>>(), vec![2, 4]);
            assert!((curve[0].speedup - 2.0).abs() < 1e-9, "{}", curve[0].speedup);
            assert!((curve[1].speedup - 4.0).abs() < 1e-9, "{}", curve[1].speedup);
            assert!(curve[1].limiting.is_none());
        }
        assert!((r.load_max_over_mean - 1.0).abs() < 1e-12);
        assert!(r.load_gini.abs() < 1e-12);
    }

    #[test]
    fn fully_serialized_run_projects_no_speedup() {
        // Every epoch conflicts on the same magic-sync cell: projected
        // weight equals serial weight, speedup 1.0 at every point.
        let mut c = ParCollector::new(4, 1, 2, true, &[2, 4]);
        for cycle in 0..50u64 {
            event(&mut c, cycle, 0, &[(StructKind::MagicSync, 1, None, true)], 3);
            event(&mut c, cycle, 3, &[(StructKind::MagicSync, 1, None, true)], 3);
        }
        let r = c.finish(0, 0);
        assert_eq!(r.serialized_epochs, r.epochs);
        for p in &r.projection {
            assert!((p.speedup - 1.0).abs() < 1e-9);
            assert_eq!(p.limiting, Some(StructKind::MagicSync));
            assert!((p.limiting_fraction - 1.0).abs() < 1e-12);
            assert!(p.sentence().contains("magic-sync serializes 100.0% of epochs"), "{}", p.sentence());
        }
        r.check_closure().expect("closure");
    }

    #[test]
    fn event_weight_fallback_counts_events() {
        let mut c = ParCollector::new(2, 1, 1, false, &[2]);
        event(&mut c, 0, 0, &[], 999_999); // nanos ignored in event mode
        event(&mut c, 0, 1, &[], 999_999);
        let r = c.finish(12345, 7);
        assert_eq!(r.weights, "events");
        assert_eq!(r.serial_weight, 2);
        // Barrier nanos don't mix with event weights.
        assert!((r.projection[0].speedup - 2.0).abs() < 1e-9);
    }

    #[test]
    fn barrier_cost_caps_the_nano_projection() {
        // One epoch, two nodes, 10 nanos each; mean barrier 20 nanos.
        // At 2 shards: projected = max(10,10) + 20 = 30 vs serial 20.
        let mut c = ParCollector::new(2, 1, 1, true, &[2]);
        event(&mut c, 0, 0, &[], 10);
        event(&mut c, 0, 1, &[], 10);
        let r = c.finish(200, 10);
        assert!((r.mean_barrier_nanos - 20.0).abs() < 1e-12);
        let p = &r.curve(PlanShape::Contiguous)[0];
        assert!((p.speedup - 20.0 / 30.0).abs() < 1e-9, "{}", p.speedup);
    }

    #[test]
    fn read_write_masks_merge_per_structure() {
        let mut c = ParCollector::new(4, 100, 4, true, &[]);
        // Node 0 writes, nodes 1..3 read the same rx-port: one record,
        // one conflict (write + 4 distinct shards).
        event(&mut c, 0, 0, &[(StructKind::RxPort, 2, Some(2), true)], 1);
        for n in 1..4usize {
            event(&mut c, 0, n, &[(StructKind::RxPort, 2, Some(2), false)], 1);
        }
        let r = c.finish(0, 0);
        assert_eq!(r.touch_records, 4);
        assert_eq!(r.conflicts_total, 1, "merged into one structure record");
        assert_eq!(r.shard_load[2].owned_conflicts, 1);
        r.check_closure().expect("closure");
    }

    #[test]
    fn imbalance_measures() {
        assert_eq!(imbalance(&[]), (1.0, 0.0));
        assert_eq!(imbalance(&[0, 0]), (1.0, 0.0));
        let (mm, g) = imbalance(&[10, 10, 10, 10]);
        assert!((mm - 1.0).abs() < 1e-12 && g.abs() < 1e-12);
        let (mm, g) = imbalance(&[40, 0, 0, 0]);
        assert!((mm - 4.0).abs() < 1e-12, "{mm}");
        assert!((g - 0.75).abs() < 1e-12, "{g}");
    }

    #[test]
    fn report_json_is_canonicalizable_and_complete() {
        let mut c = ParCollector::new(4, 2, 2, true, &[2, 4, 8, 16]);
        event(&mut c, 0, 0, &[(StructKind::Classifier, 0x40, Some(1), true)], 5);
        event(&mut c, 1, 2, &[(StructKind::Classifier, 0x40, Some(1), true)], 5);
        let r = c.finish(10, 2);
        let json = r.to_json().canonical();
        let text = json.render_pretty();
        let parsed = Json::parse(&text).expect("parses");
        assert_eq!(parsed.get("epochs").and_then(Json::as_u64), Some(1));
        // Shard counts clamp to the node count: x8/x16 degenerate to x4.
        let shards: Vec<u64> = parsed
            .get("projection")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .filter(|p| p.get("shape").and_then(Json::as_str) == Some("contiguous"))
            .map(|p| p.get("shards").and_then(Json::as_u64).unwrap())
            .collect();
        assert_eq!(shards, vec![2, 4, 4, 4]);
    }
}

//! Deterministic pseudo-random number generation.

/// SplitMix64: a tiny, fast, well-distributed PRNG.
///
/// The simulator itself is fully deterministic; randomness appears only in
/// the paper's workload *variants* (Section 4.1: "processors waste a
/// pseudo-random (but bounded) amount of time after the release"). Each
/// simulated processor gets its own stream seeded from `(experiment seed,
/// processor id)` so results are reproducible bit-for-bit.
///
/// ```
/// use sim_engine::SplitMix64;
///
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives an independent stream for a numbered sub-entity (e.g. a CPU).
    pub fn derive(seed: u64, stream: u64) -> Self {
        let mut base = SplitMix64::new(seed ^ stream.wrapping_mul(0x9e3779b97f4a7c15));
        // Burn a few outputs so nearby streams decorrelate.
        base.next_u64();
        base.next_u64();
        base
    }

    /// The raw internal state, for checkpointing. A generator rebuilt
    /// with [`SplitMix64::from_state`] continues the exact stream.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator from a state captured by [`SplitMix64::state`].
    pub fn from_state(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A uniformly distributed value in `[0, bound)`. `bound` must be > 0.
    ///
    /// Uses the widening-multiply technique; the slight modulo bias of naive
    /// `% bound` is avoided well enough for workload jitter.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniformly distributed value in the inclusive range `[lo, hi]`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        lo + self.next_below(hi - lo + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_streams_differ() {
        let mut a = SplitMix64::derive(7, 0);
        let mut b = SplitMix64::derive(7, 1);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn bounded_values_in_range() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            let v = r.next_below(50);
            assert!(v < 50);
            let w = r.next_range(10, 20);
            assert!((10..=20).contains(&w));
        }
    }

    #[test]
    fn bounded_values_cover_range() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit: {seen:?}");
    }

    #[test]
    #[should_panic]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }
}

//! Earliest-free-time FIFO resource servers.

use crate::Cycle;

/// A single-occupancy FIFO resource.
///
/// The paper models contention at exactly three places: the memory module of
/// each node, and the transmit/receive ports of each network interface. All
/// three serve one request at a time in arrival order, which is captured by
/// a single "earliest free time" scalar: a request arriving at `now` that
/// needs `service` cycles begins at `max(now, free_at)` and completes
/// `service` cycles later.
///
/// ```
/// use sim_engine::FifoServer;
///
/// let mut mem = FifoServer::new();
/// // Two block reads arrive back to back; the second queues behind the first.
/// assert_eq!(mem.occupy(100, 35), 135);
/// assert_eq!(mem.occupy(101, 35), 170);
/// // Once the module drains, service starts immediately again.
/// assert_eq!(mem.occupy(500, 20), 520);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FifoServer {
    free_at: Cycle,
    busy_cycles: Cycle,
    wait_cycles: Cycle,
    requests: u64,
}

impl FifoServer {
    /// Creates a server that is free at cycle 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a request arriving at `now` needing `service` cycles and
    /// returns its completion cycle.
    pub fn occupy(&mut self, now: Cycle, service: Cycle) -> Cycle {
        let start = self.free_at.max(now);
        self.wait_cycles += start - now;
        self.free_at = start + service;
        self.busy_cycles += service;
        self.requests += 1;
        self.free_at
    }

    /// The first cycle at which the server would start a request arriving at
    /// `now`, without enqueueing anything.
    pub fn next_start(&self, now: Cycle) -> Cycle {
        self.free_at.max(now)
    }

    /// Total cycles of service performed so far (a utilization numerator).
    pub fn busy_cycles(&self) -> Cycle {
        self.busy_cycles
    }

    /// Total cycles requests spent queued before service began (a
    /// contention measure: zero means every request found the server idle).
    pub fn wait_cycles(&self) -> Cycle {
        self.wait_cycles
    }

    /// Number of requests served so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// The complete internal state `(free_at, busy_cycles, wait_cycles,
    /// requests)`, for checkpointing.
    pub fn to_raw_parts(&self) -> [u64; 4] {
        [self.free_at, self.busy_cycles, self.wait_cycles, self.requests]
    }

    /// Rebuilds a server from [`FifoServer::to_raw_parts`] output.
    pub fn from_raw_parts(parts: [u64; 4]) -> Self {
        FifoServer { free_at: parts[0], busy_cycles: parts[1], wait_cycles: parts[2], requests: parts[3] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_starts_immediately() {
        let mut s = FifoServer::new();
        assert_eq!(s.occupy(42, 10), 52);
    }

    #[test]
    fn queued_requests_serialize() {
        let mut s = FifoServer::new();
        let a = s.occupy(0, 20);
        let b = s.occupy(0, 20);
        let c = s.occupy(0, 20);
        assert_eq!((a, b, c), (20, 40, 60));
    }

    #[test]
    fn gap_resets_start_time() {
        let mut s = FifoServer::new();
        s.occupy(0, 5);
        assert_eq!(s.occupy(1000, 5), 1005);
    }

    #[test]
    fn accounting() {
        let mut s = FifoServer::new();
        s.occupy(0, 7);
        s.occupy(0, 3);
        assert_eq!(s.busy_cycles(), 10);
        assert_eq!(s.requests(), 2);
        // The second request queued for the first's full 7-cycle service.
        assert_eq!(s.wait_cycles(), 7);
        s.occupy(100, 5);
        assert_eq!(s.wait_cycles(), 7, "an idle-server request adds no wait");
    }

    #[test]
    fn zero_service_is_allowed() {
        let mut s = FifoServer::new();
        assert_eq!(s.occupy(9, 0), 9);
        assert_eq!(s.requests(), 1);
    }
}

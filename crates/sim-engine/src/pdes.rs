//! Conservative parallel-discrete-event (PDES) core: sharded event queues
//! advanced in lockstep epochs.
//!
//! [`ShardPlan`] partitions the simulated nodes into contiguous shards;
//! [`ShardedQueue`] gives each shard its own bucket-wheel [`EventQueue`]
//! and merges them into one global `(cycle, seq)` order. Time advances in
//! *epochs* of `lookahead` cycles: every event whose cycle falls inside
//! the current epoch window `[epoch_start, epoch_start + lookahead)` is
//! popped in global order; cross-shard messages produced during the epoch
//! are parked in per-(source, destination) handoff buffers and drained at
//! the epoch barrier, where the next window is opened at the new global
//! minimum.
//!
//! The conservative invariant that makes the barrier safe: a cross-shard
//! message sent at cycle `t` inside the epoch arrives no earlier than
//! `t + lookahead` (for the mesh machine, delivery latency is at least
//! `switch_delay · hops + flits`, and `lookahead` is derived from the
//! minimum inter-shard hop distance — see `sim_net::MeshShape`). Hence
//! every handoff drained at the barrier fires at or after the epoch's end
//! and can never have been due *inside* the epoch just completed. The
//! drain asserts exactly that, so a mis-derived lookahead fails loudly
//! instead of silently reordering events.
//!
//! One global sequence counter spans all shards. Because events commit in
//! the same `(cycle, seq)` order a single queue would produce, the counter
//! assigns every schedule the same seq it would have received serially —
//! which is what the differential tests in `tests/pdes_equivalence.rs`
//! prove end to end against the fingerprint chains.
//!
//! Not every cross-shard event is a network message: magic-sync wake-ups
//! (idealized locks and barriers) fire after a fixed cost that may be
//! smaller than the lookahead. Those bypass the handoff fabric through
//! [`ShardedQueue::schedule_direct`] — safe because commit order is the
//! globally merged one — and are tallied separately so observability can
//! report how much traffic rides outside the conservative bound.

use std::time::Instant;

use crate::queue::{EventQueue, QueueSnapshot, QueueStats};
use crate::{Cycle, NodeId};

/// A complete capture of a [`ShardedQueue`]: every shard queue's
/// [`QueueSnapshot`], every parked handoff, the global sequence counter,
/// the epoch window, and the lifetime counters. Produced by
/// [`ShardedQueue::snapshot`]; consumed by [`ShardedQueue::restore`].
///
/// `barrier_nanos` is deliberately absent: it measures *host* time for
/// this process and restarts at zero in a restored run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedSnapshot<E> {
    /// The clock at capture time.
    pub now: Cycle,
    /// The global tie-breaking counter spanning all shards.
    pub next_seq: u64,
    /// Shard of the most recently committed event.
    pub current_shard: usize,
    /// Exclusive end of the current epoch window.
    pub epoch_end: Cycle,
    /// Epoch barriers taken so far.
    pub epochs: u64,
    /// Cross-shard events routed through handoff buffers so far.
    pub handoff_events: u64,
    /// Cross-shard direct insertions so far.
    pub direct_cross: u64,
    /// Global pending-event high-water mark.
    pub peak_len: u64,
    /// Per-shard committed-pop counters, in shard order.
    pub pops: Vec<u64>,
    /// One queue snapshot per shard, in shard order.
    pub queues: Vec<QueueSnapshot<E>>,
    /// Parked handoffs as `(src, dst, at, seq, payload)` in buffer order.
    pub handoffs: Vec<(usize, usize, Cycle, u64, E)>,
}

/// A static partition of `nodes` simulated nodes into `shards` contiguous
/// blocks, plus the conservative lookahead (in cycles) any cross-shard
/// network message is guaranteed to take.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shard_of: Vec<usize>,
    shards: usize,
    lookahead: Cycle,
}

impl ShardPlan {
    /// Builds a contiguous partition of `nodes` nodes into (at most)
    /// `requested` shards — the effective shard count is clamped to the
    /// node count, so requesting more shards than nodes degenerates to
    /// one node per shard. `lookahead` must be at least 1 (an epoch must
    /// make progress).
    pub fn contiguous(nodes: usize, requested: usize, lookahead: Cycle) -> Self {
        assert!(nodes > 0, "a shard plan needs at least one node");
        assert!(requested > 0, "shard count must be at least 1");
        assert!(lookahead >= 1, "lookahead must be at least 1 cycle");
        let shards = requested.min(nodes);
        // Node n lands in block n·shards/nodes: contiguous, and block
        // sizes differ by at most one.
        let shard_of = (0..nodes).map(|n| n * shards / nodes).collect();
        ShardPlan { shard_of, shards, lookahead }
    }

    /// Builds a round-robin partition: node `n` lands in shard
    /// `n % shards`. Interleaving neighbours across shards trades the
    /// contiguous plan's cheap lookahead for a different load balance —
    /// the what-if projector in `sim-stats::parobs` evaluates both shapes
    /// against recorded epoch traffic. Clamping and validation match
    /// [`ShardPlan::contiguous`].
    pub fn round_robin(nodes: usize, requested: usize, lookahead: Cycle) -> Self {
        assert!(nodes > 0, "a shard plan needs at least one node");
        assert!(requested > 0, "shard count must be at least 1");
        assert!(lookahead >= 1, "lookahead must be at least 1 cycle");
        let shards = requested.min(nodes);
        let shard_of = (0..nodes).map(|n| n % shards).collect();
        ShardPlan { shard_of, shards, lookahead }
    }

    /// Effective number of shards (≤ node count).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of simulated nodes covered by the plan.
    pub fn nodes(&self) -> usize {
        self.shard_of.len()
    }

    /// The shard owning node `n`.
    pub fn shard_of(&self, n: NodeId) -> usize {
        self.shard_of[n]
    }

    /// The conservative cross-shard lookahead, in cycles.
    pub fn lookahead(&self) -> Cycle {
        self.lookahead
    }
}

/// A buffered cross-shard event: fires at `at` with global seq `seq`.
struct Handoff<E> {
    at: Cycle,
    seq: u64,
    payload: E,
}

/// Per-shard counters surfaced to the host-observability layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Events popped (committed) from this shard's queue.
    pub pops: u64,
    /// Events scheduled into this shard's queue.
    pub scheduled: u64,
}

/// Several per-shard [`EventQueue`]s merged into one global
/// `(cycle, seq)` order, advanced in lookahead-bounded epochs.
///
/// The pop stream is *identical* to a single [`EventQueue`] fed the same
/// schedule calls in the same order — sharding changes where events wait,
/// never when they commit.
pub struct ShardedQueue<E> {
    queues: Vec<EventQueue<E>>,
    /// Handoff buffer from shard `src` to shard `dst` at
    /// `handoff[src * shards + dst]`.
    handoff: Vec<Vec<Handoff<E>>>,
    pending_handoffs: usize,
    shards: usize,
    lookahead: Cycle,
    /// Global insertion counter spanning every shard queue.
    next_seq: u64,
    /// Cycle of the most recently committed event.
    now: Cycle,
    /// Shard of the most recently committed event — the "sending" side of
    /// any handoff scheduled while its handler runs.
    current_shard: usize,
    /// Exclusive end of the current epoch window; 0 before the first
    /// barrier establishes a window.
    epoch_end: Cycle,
    epochs: u64,
    handoff_events: u64,
    direct_cross: u64,
    peak_len: u64,
    pops: Vec<u64>,
    barrier_timing: bool,
    barrier_nanos: u64,
}

impl<E> ShardedQueue<E> {
    /// Creates an empty sharded queue for `plan.shards()` shards.
    pub fn new(plan: &ShardPlan) -> Self {
        let shards = plan.shards();
        ShardedQueue {
            queues: (0..shards).map(|_| EventQueue::new()).collect(),
            handoff: (0..shards * shards).map(|_| Vec::new()).collect(),
            pending_handoffs: 0,
            shards,
            lookahead: plan.lookahead(),
            next_seq: 0,
            now: 0,
            current_shard: 0,
            epoch_end: 0,
            epochs: 0,
            handoff_events: 0,
            direct_cross: 0,
            peak_len: 0,
            pops: vec![0; shards],
            barrier_timing: false,
            barrier_nanos: 0,
        }
    }

    /// Starts timing epoch barriers (drain + window advance) on the host
    /// clock; off by default so the hot path stays untimed.
    pub fn enable_barrier_timing(&mut self) {
        self.barrier_timing = true;
    }

    /// The cycle of the most recently popped event (0 before any pop).
    pub fn now(&self) -> Cycle {
        self.now
    }

    fn note_len(&mut self) {
        self.peak_len = self.peak_len.max(self.len() as u64);
    }

    /// Schedules `payload` at `at` into shard `shard`'s queue directly.
    ///
    /// Use for events that stay on the committing shard, and for
    /// *non-network* cross-shard events (magic-sync wake-ups) whose
    /// latency may undercut the lookahead — the globally merged commit
    /// order keeps direct insertion safe. Cross-shard direct schedules
    /// are tallied in [`ShardedQueue::direct_cross`].
    pub fn schedule_direct(&mut self, at: Cycle, shard: usize, payload: E) {
        debug_assert!(at >= self.now, "event scheduled in the past: {at} < {}", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        if shard != self.current_shard {
            self.direct_cross += 1;
        }
        self.queues[shard].schedule_with_seq(at, seq, payload);
        self.note_len();
    }

    /// Schedules a cross-shard *network* message: parks it in the
    /// handoff buffer from the committing shard to `shard`, to be drained
    /// at the next epoch barrier. The conservative bound requires
    /// `at ≥ epoch_end`; the barrier drain asserts it. Same-shard targets
    /// fall through to direct insertion.
    pub fn schedule_handoff(&mut self, at: Cycle, shard: usize, payload: E) {
        if shard == self.current_shard {
            self.schedule_direct(at, shard, payload);
            return;
        }
        debug_assert!(at >= self.now, "event scheduled in the past: {at} < {}", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.handoff_events += 1;
        self.pending_handoffs += 1;
        self.handoff[self.current_shard * self.shards + shard].push(Handoff { at, seq, payload });
        self.note_len();
    }

    /// Drains every handoff buffer into its destination shard queue and
    /// opens the next epoch window at the new global minimum.
    fn barrier(&mut self) {
        let t0 = self.barrier_timing.then(Instant::now);
        if self.pending_handoffs > 0 {
            for src in 0..self.shards {
                for dst in 0..self.shards {
                    let buf = &mut self.handoff[src * self.shards + dst];
                    if buf.is_empty() {
                        continue;
                    }
                    for Handoff { at, seq, payload } in buf.drain(..) {
                        assert!(
                            at >= self.epoch_end,
                            "cross-shard handoff {src}→{dst} fires at {at}, inside the epoch \
                             ending at {}: the lookahead bound ({} cycles) is violated",
                            self.epoch_end,
                            self.lookahead,
                        );
                        self.queues[dst].schedule_with_seq(at, seq, payload);
                    }
                }
            }
            self.pending_handoffs = 0;
        }
        // Open the next window at the earliest pending cycle.
        if let Some(start) = self.queues.iter().filter_map(|q| q.peek_key()).map(|(at, _)| at).min() {
            self.epoch_end = start + self.lookahead;
            self.epochs += 1;
        }
        if let Some(t0) = t0 {
            self.barrier_nanos += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Removes and returns the globally earliest `(cycle, seq)` event,
    /// advancing the clock (and, when the window is exhausted, the epoch).
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        loop {
            let best = (0..self.shards).filter_map(|i| self.queues[i].peek_key().map(|k| (k, i))).min();
            match best {
                Some(((at, _), shard)) if at < self.epoch_end => {
                    let (at, payload) = self.queues[shard].pop().expect("peeked shard is empty");
                    self.current_shard = shard;
                    self.pops[shard] += 1;
                    self.now = at;
                    return Some((at, payload));
                }
                None if self.pending_handoffs == 0 => return None,
                // Window exhausted (or only handoffs remain): run the
                // epoch barrier and retry.
                _ => self.barrier(),
            }
        }
    }

    /// The `(cycle, seq)` key the next [`ShardedQueue::pop`] would
    /// return, ignoring events still parked in handoff buffers.
    pub fn peek_committed_key(&self) -> Option<(Cycle, u64)> {
        self.queues.iter().filter_map(|q| q.peek_key()).min()
    }

    /// Pending events across all shard queues and handoff buffers.
    pub fn len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum::<usize>() + self.pending_handoffs
    }

    /// Whether nothing is pending anywhere (queues *and* handoffs).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregated lifetime counters across every shard queue. `peak_len`
    /// is the global high-water mark (tracked here), not a sum of
    /// per-shard peaks.
    pub fn stats(&self) -> QueueStats {
        let mut total = QueueStats::default();
        for q in &self.queues {
            let s = q.stats();
            total.scheduled += s.scheduled;
            total.far_spills += s.far_spills;
            total.far_merged += s.far_merged;
        }
        total.peak_len = self.peak_len;
        total
    }

    /// Occupied bucket-wheel slots summed across shards.
    pub fn occupied_slots(&self) -> usize {
        self.queues.iter().map(|q| q.occupied_slots()).sum()
    }

    /// Far-heap residents summed across shards.
    pub fn far_len(&self) -> usize {
        self.queues.iter().map(|q| q.far_len()).sum()
    }

    /// Effective shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The lookahead the epoch windows are bounded by.
    pub fn lookahead(&self) -> Cycle {
        self.lookahead
    }

    /// Epoch barriers taken so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Cross-shard events routed through handoff buffers.
    pub fn handoff_events(&self) -> u64 {
        self.handoff_events
    }

    /// Cross-shard events inserted directly (magic-sync wake-ups that
    /// legitimately undercut the lookahead).
    pub fn direct_cross(&self) -> u64 {
        self.direct_cross
    }

    /// Host nanoseconds spent inside epoch barriers; 0 unless
    /// [`ShardedQueue::enable_barrier_timing`] was called.
    pub fn barrier_nanos(&self) -> u64 {
        self.barrier_nanos
    }

    /// The shard of the most recently committed event.
    pub fn current_shard(&self) -> usize {
        self.current_shard
    }

    /// Per-shard pop/schedule counters, in shard order.
    pub fn shard_counters(&self) -> Vec<ShardCounters> {
        (0..self.shards)
            .map(|i| ShardCounters { pops: self.pops[i], scheduled: self.queues[i].stats().scheduled })
            .collect()
    }

    /// Captures the complete sharded state — every shard queue, every
    /// parked handoff, the epoch window, and all counters — without
    /// disturbing it.
    pub fn snapshot(&self) -> ShardedSnapshot<E>
    where
        E: Clone,
    {
        let mut handoffs = Vec::with_capacity(self.pending_handoffs);
        for src in 0..self.shards {
            for dst in 0..self.shards {
                for h in &self.handoff[src * self.shards + dst] {
                    handoffs.push((src, dst, h.at, h.seq, h.payload.clone()));
                }
            }
        }
        ShardedSnapshot {
            now: self.now,
            next_seq: self.next_seq,
            current_shard: self.current_shard,
            epoch_end: self.epoch_end,
            epochs: self.epochs,
            handoff_events: self.handoff_events,
            direct_cross: self.direct_cross,
            peak_len: self.peak_len,
            pops: self.pops.clone(),
            queues: self.queues.iter().map(|q| q.snapshot()).collect(),
            handoffs,
        }
    }

    /// Rebuilds a sharded queue from a [`ShardedSnapshot`] under the same
    /// [`ShardPlan`]. The restored queue commits the byte-identical
    /// `(cycle, seq, payload)` stream the snapshotted one would have.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's shard count disagrees with the plan.
    pub fn restore(plan: &ShardPlan, snap: ShardedSnapshot<E>) -> Self {
        assert_eq!(snap.queues.len(), plan.shards(), "snapshot shard count disagrees with the plan");
        let mut q = ShardedQueue::new(plan);
        q.now = snap.now;
        q.next_seq = snap.next_seq;
        q.current_shard = snap.current_shard;
        q.epoch_end = snap.epoch_end;
        q.epochs = snap.epochs;
        q.handoff_events = snap.handoff_events;
        q.direct_cross = snap.direct_cross;
        q.peak_len = snap.peak_len;
        q.pops = snap.pops;
        q.queues = snap.queues.into_iter().map(EventQueue::restore).collect();
        q.pending_handoffs = snap.handoffs.len();
        for (src, dst, at, seq, payload) in snap.handoffs {
            assert!(src < q.shards && dst < q.shards, "snapshot handoff names an unknown shard");
            q.handoff[src * q.shards + dst].push(Handoff { at, seq, payload });
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn plan_is_contiguous_and_balanced() {
        let p = ShardPlan::contiguous(32, 8, 2);
        assert_eq!(p.shards(), 8);
        assert_eq!(p.nodes(), 32);
        // Contiguous blocks of 4.
        for n in 0..32 {
            assert_eq!(p.shard_of(n), n / 4);
        }
        // Uneven split stays contiguous, block sizes differ by ≤ 1.
        let p = ShardPlan::contiguous(5, 2, 2);
        let shards: Vec<usize> = (0..5).map(|n| p.shard_of(n)).collect();
        assert_eq!(shards, vec![0, 0, 0, 1, 1]);
        assert!(shards.windows(2).all(|w| w[0] <= w[1]), "contiguous");
    }

    #[test]
    fn plan_clamps_shards_to_node_count() {
        let p = ShardPlan::contiguous(3, 16, 2);
        assert_eq!(p.shards(), 3, "more shards than nodes degenerates to one node per shard");
        assert_eq!((0..3).map(|n| p.shard_of(n)).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn round_robin_interleaves_and_clamps() {
        let p = ShardPlan::round_robin(8, 4, 2);
        assert_eq!(p.shards(), 4);
        assert_eq!((0..8).map(|n| p.shard_of(n)).collect::<Vec<_>>(), vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // Clamps like the contiguous plan; both shapes then coincide.
        let p = ShardPlan::round_robin(3, 16, 2);
        assert_eq!(p.shards(), 3);
        assert_eq!((0..3).map(|n| p.shard_of(n)).collect::<Vec<_>>(), vec![0, 1, 2]);
        // Uneven split: early shards take the extra nodes.
        let p = ShardPlan::round_robin(5, 2, 2);
        assert_eq!((0..5).map(|n| p.shard_of(n)).collect::<Vec<_>>(), vec![0, 1, 0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "lookahead must be at least 1")]
    fn plan_rejects_zero_lookahead() {
        ShardPlan::contiguous(4, 2, 0);
    }

    /// Mirrors every op on a serial [`EventQueue`] and a [`ShardedQueue`]
    /// and asserts the pop streams are identical. Payloads carry the
    /// target node so the sharded side can route.
    fn differential_case(seed: u64, nodes: usize, shards: usize, lookahead: Cycle, ops: usize) {
        let plan = ShardPlan::contiguous(nodes, shards, lookahead);
        let mut serial: EventQueue<(usize, u64)> = EventQueue::new();
        let mut sharded: ShardedQueue<(usize, u64)> = ShardedQueue::new(&plan);
        let mut rng = SplitMix64::new(seed);
        let mut payload = 0u64;
        // Seed both with one event per node at cycle 0 (the CpuStep@0
        // shape of Machine::run).
        for n in 0..nodes {
            serial.schedule(0, (n, payload));
            sharded.schedule_direct(0, plan.shard_of(n), (n, payload));
            payload += 1;
        }
        for _ in 0..ops {
            let s = serial.pop();
            let p = sharded.pop();
            assert_eq!(s, p, "seed {seed}: pop streams diverged");
            let Some((at, (node, _))) = s else { break };
            assert_eq!(sharded.now(), at);
            // The committed handler emits 0–2 follow-up events.
            for _ in 0..rng.next_below(3) {
                let target = rng.next_below(nodes as u64) as usize;
                let tshard = plan.shard_of(target);
                payload += 1;
                if tshard == plan.shard_of(node) {
                    // Same-shard: any non-negative delay.
                    let t = at + rng.next_below(40);
                    serial.schedule(t, (target, payload));
                    sharded.schedule_direct(t, tshard, (target, payload));
                } else if rng.next_below(4) == 0 {
                    // Magic-sync shape: cross-shard, may undercut the
                    // lookahead, direct insertion.
                    let t = at + rng.next_below(lookahead.max(2));
                    serial.schedule(t, (target, payload));
                    sharded.schedule_direct(t, tshard, (target, payload));
                } else {
                    // Network shape: cross-shard, latency ≥ lookahead.
                    let t = at + lookahead + rng.next_below(60);
                    serial.schedule(t, (target, payload));
                    sharded.schedule_handoff(t, tshard, (target, payload));
                }
            }
        }
        loop {
            let s = serial.pop();
            let p = sharded.pop();
            assert_eq!(s, p, "seed {seed}: drain diverged");
            if s.is_none() {
                break;
            }
        }
        assert!(sharded.is_empty());
    }

    #[test]
    fn merged_pop_order_matches_a_single_queue() {
        for seed in 0..30u64 {
            differential_case(0xde5_0000 + seed, 8, 4, 6, 500);
        }
    }

    #[test]
    fn single_node_shards_and_unit_lookahead() {
        // Lookahead of exactly one cycle: every cycle is its own epoch.
        for seed in 0..10u64 {
            differential_case(0x1001 + seed, 4, 4, 1, 300);
        }
    }

    #[test]
    fn one_shard_is_a_plain_queue() {
        for seed in 0..10u64 {
            differential_case(0x5e81a1 + seed, 6, 1, 4, 400);
        }
    }

    #[test]
    fn handoff_landing_exactly_on_the_epoch_boundary_is_legal() {
        let plan = ShardPlan::contiguous(2, 2, 5);
        let mut q: ShardedQueue<u32> = ShardedQueue::new(&plan);
        q.schedule_direct(0, 0, 1);
        assert_eq!(q.pop(), Some((0, 1))); // epoch [0, 5) opens
                                           // From shard 0 at cycle 0, a message arriving exactly at the
                                           // epoch end (0 + lookahead) is the tightest legal handoff.
        q.schedule_handoff(5, 1, 2);
        assert_eq!(q.pop(), Some((5, 2)));
        assert_eq!(q.epochs(), 2);
        assert_eq!(q.handoff_events(), 1);
    }

    #[test]
    #[should_panic(expected = "lookahead bound")]
    fn handoff_inside_the_epoch_panics() {
        let plan = ShardPlan::contiguous(2, 2, 5);
        let mut q: ShardedQueue<u32> = ShardedQueue::new(&plan);
        q.schedule_direct(0, 0, 1);
        q.schedule_direct(10, 0, 3);
        assert_eq!(q.pop(), Some((0, 1))); // epoch [0, 5)
        q.schedule_handoff(4, 1, 2); // violates: 4 < epoch_end = 5
        while q.pop().is_some() {}
    }

    /// Runs the same random traffic on a live sharded queue and on a
    /// copy restored from a mid-run snapshot; both must commit identical
    /// streams to the end.
    #[test]
    fn snapshot_restore_commits_identically() {
        for seed in 0..20u64 {
            let nodes = 8;
            let shards = 4;
            let lookahead = 6;
            let plan = ShardPlan::contiguous(nodes, shards, lookahead);
            let mut q: ShardedQueue<(usize, u64)> = ShardedQueue::new(&plan);
            let mut rng = SplitMix64::new(0xabcd + seed);
            let mut payload = 0u64;
            for n in 0..nodes {
                q.schedule_direct(0, plan.shard_of(n), (n, payload));
                payload += 1;
            }
            // Advance partway; leave queues, handoffs, and the epoch
            // window in a non-trivial state.
            let schedule_followups = |q: &mut ShardedQueue<(usize, u64)>,
                                      rng: &mut SplitMix64,
                                      at: Cycle,
                                      node: usize,
                                      payload: &mut u64| {
                for _ in 0..rng.next_below(3) {
                    let target = rng.next_below(nodes as u64) as usize;
                    let tshard = plan.shard_of(target);
                    *payload += 1;
                    if tshard == plan.shard_of(node) {
                        q.schedule_direct(at + rng.next_below(40), tshard, (target, *payload));
                    } else if rng.next_below(4) == 0 {
                        q.schedule_direct(at + rng.next_below(lookahead.max(2)), tshard, (target, *payload));
                    } else {
                        q.schedule_handoff(at + lookahead + rng.next_below(60), tshard, (target, *payload));
                    }
                }
            };
            for _ in 0..150 {
                let Some((at, (node, _))) = q.pop() else { break };
                schedule_followups(&mut q, &mut rng, at, node, &mut payload);
            }
            let snap = q.snapshot();
            let mut r = ShardedQueue::restore(&plan, snap.clone());
            assert_eq!(r.now(), q.now(), "seed {seed}");
            assert_eq!(r.len(), q.len(), "seed {seed}");
            assert_eq!(r.snapshot(), snap, "seed {seed}: re-snapshot differs");
            // Drive both with the same follow-up traffic via a forked rng.
            let mut rng_r = SplitMix64::from_state(rng.state());
            loop {
                let a = q.pop();
                let b = r.pop();
                assert_eq!(a, b, "seed {seed}: post-restore streams diverged");
                let Some((at, (node, _))) = a else { break };
                let mut p2 = payload;
                schedule_followups(&mut q, &mut rng, at, node, &mut payload);
                schedule_followups(&mut r, &mut rng_r, at, node, &mut p2);
                assert_eq!(payload, p2);
            }
            assert!(q.is_empty() && r.is_empty());
            assert_eq!(q.epochs(), r.epochs(), "seed {seed}");
            assert_eq!(q.handoff_events(), r.handoff_events(), "seed {seed}");
        }
    }

    #[test]
    fn restore_rejects_wrong_shard_count() {
        let plan2 = ShardPlan::contiguous(4, 2, 3);
        let plan4 = ShardPlan::contiguous(4, 4, 3);
        let q: ShardedQueue<u32> = ShardedQueue::new(&plan2);
        let snap = q.snapshot();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ShardedQueue::restore(&plan4, snap);
        }));
        assert!(r.is_err(), "mismatched shard count must be rejected");
    }

    #[test]
    fn counters_and_aggregates_cover_handoffs() {
        let plan = ShardPlan::contiguous(4, 2, 3);
        let mut q: ShardedQueue<u32> = ShardedQueue::new(&plan);
        q.schedule_direct(0, 0, 1);
        q.pop();
        q.schedule_handoff(7, 1, 2); // parked, not yet in any queue
        assert_eq!(q.len(), 1, "handoff buffers count as pending");
        assert!(!q.is_empty());
        q.schedule_direct(1, 1, 3); // cross-shard direct (magic shape)
        assert_eq!(q.direct_cross(), 1);
        assert_eq!(q.pop(), Some((1, 3)));
        assert_eq!(q.pop(), Some((7, 2)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.handoff_events(), 1);
        assert_eq!(q.stats().scheduled, 3);
        assert_eq!(q.shard_counters().iter().map(|c| c.pops).sum::<u64>(), 3);
        assert!(q.epochs() >= 2);
    }
}

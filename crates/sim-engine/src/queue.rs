//! Deterministic event queue.
//!
//! [`EventQueue`] is a two-level indexed queue: a *bucket wheel* holds the
//! near future (one FIFO bucket per cycle in a fixed window starting at the
//! current cycle) and an overflow heap holds the far future. The simulator
//! schedules almost exclusively a few tens of cycles ahead (network hops,
//! memory service, spin re-checks), so in steady state every operation
//! touches only the wheel: `schedule` is an append to a reusable bucket and
//! `pop` is a bitmap scan to the next occupied slot — no comparisons
//! against other pending events and no per-event allocation once the
//! bucket capacity has warmed up.
//!
//! The observable order is identical to a totally ordered heap: events pop
//! in `(cycle, seq)` order, where `seq` is the global insertion number.
//! Within a bucket events are appended in increasing `seq`; events that
//! overflow to the far heap carry their `seq` and are merged back into the
//! wheel *before* any same-cycle event could be scheduled directly (a
//! cycle enters the wheel window exactly once, and the merge happens at
//! that moment), so bucket FIFO order always equals `seq` order.

use std::collections::{BinaryHeap, VecDeque};

use crate::Cycle;

/// Number of cycles covered by the near-future bucket wheel. Must be a
/// power of two. The simulator's event horizon (DRAM block service, a
/// full-diameter mesh traversal, spin wake-ups) sits well below this, so
/// far-heap traffic is rare.
const WHEEL: u64 = 1024;
const WHEEL_MASK: u64 = WHEEL - 1;
/// Occupancy bitmap: one bit per wheel slot, packed into u64 words.
const BITMAP_WORDS: usize = (WHEEL / 64) as usize;

/// Lifetime counters maintained by the queue itself (trivially cheap, so
/// always on): how much was scheduled, how often the far heap was
/// involved, and the deepest the queue ever got. Snapshot via
/// [`EventQueue::stats`]; interpreted by the host-observability layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events scheduled over the queue's lifetime.
    pub scheduled: u64,
    /// Schedules that landed beyond the wheel horizon (far-heap pushes).
    pub far_spills: u64,
    /// Far-heap entries merged back into the wheel by window advances.
    pub far_merged: u64,
    /// Peak pending-event count.
    pub peak_len: u64,
}

/// A complete, order-preserving capture of an [`EventQueue`]: the clock,
/// the sequence counter, the lifetime stats, and every pending event in
/// exact pop order. Produced by [`EventQueue::snapshot`]; consumed by
/// [`EventQueue::restore`]. The entry list is strictly increasing in
/// `(cycle, seq)` — wheel residents first, then the far-future heap in
/// merged order — so a restored queue pops the identical stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueSnapshot<E> {
    /// The clock at capture time ([`EventQueue::now`]).
    pub now: Cycle,
    /// The next tie-breaking sequence number the queue would assign.
    pub next_seq: u64,
    /// Lifetime counters at capture time.
    pub stats: QueueStats,
    /// Every pending event as `(cycle, seq, payload)` in pop order.
    pub entries: Vec<(Cycle, u64, E)>,
}

/// A far-future entry: fires at `at`, carrying payload `E`.
struct FarEntry<E> {
    at: Cycle,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for FarEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for FarEntry<E> {}
impl<E> PartialOrd for FarEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for FarEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (cycle, seq)
        // pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A min-ordered event queue over simulated cycles with FIFO tie-breaking.
///
/// `seq` breaks ties between events scheduled for the same cycle: events
/// inserted earlier fire earlier. This makes the whole simulation
/// deterministic regardless of container internals.
///
/// ```
/// use sim_engine::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(10, "b");
/// q.schedule(5, "a");
/// q.schedule(10, "c");
/// assert_eq!(q.pop(), Some((5, "a")));
/// assert_eq!(q.pop(), Some((10, "b"))); // same-cycle events pop in insertion order
/// assert_eq!(q.pop(), Some((10, "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// Wheel slot for cycle `c` is `slots[(c & WHEEL_MASK)]`; the wheel
    /// covers exactly `[now, horizon)`, so the mapping is injective.
    slots: Vec<VecDeque<(u64, E)>>,
    /// One occupancy bit per slot (bit set ⇔ slot non-empty).
    occupied: [u64; BITMAP_WORDS],
    /// Events in wheel slots.
    wheel_len: usize,
    /// Events at `horizon` or later.
    far: BinaryHeap<FarEntry<E>>,
    /// Exclusive upper bound of the wheel window (= `now + WHEEL`).
    horizon: Cycle,
    next_seq: u64,
    now: Cycle,
    stats: QueueStats,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at cycle 0.
    pub fn new() -> Self {
        EventQueue {
            slots: (0..WHEEL).map(|_| VecDeque::new()).collect(),
            occupied: [0; BITMAP_WORDS],
            wheel_len: 0,
            far: BinaryHeap::new(),
            horizon: WHEEL,
            next_seq: 0,
            now: 0,
            stats: QueueStats::default(),
        }
    }

    /// The cycle of the most recently popped event (0 before any pop).
    pub fn now(&self) -> Cycle {
        self.now
    }

    #[inline]
    fn mark(&mut self, slot: u64) {
        self.occupied[(slot / 64) as usize] |= 1 << (slot % 64);
    }

    #[inline]
    fn clear(&mut self, slot: u64) {
        self.occupied[(slot / 64) as usize] &= !(1 << (slot % 64));
    }

    /// Schedules `payload` to fire at absolute cycle `at`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` lies in the past (before the last
    /// popped event); the simulator never rewinds time. See
    /// [`EventQueue::pop`] for why release builds may skip the check.
    pub fn schedule(&mut self, at: Cycle, payload: E) {
        debug_assert!(at >= self.now, "event scheduled in the past: {at} < {}", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.scheduled += 1;
        if at < self.horizon {
            let slot = at & WHEEL_MASK;
            self.slots[slot as usize].push_back((seq, payload));
            self.mark(slot);
            self.wheel_len += 1;
        } else {
            self.stats.far_spills += 1;
            self.far.push(FarEntry { at, seq, payload });
        }
        self.stats.peak_len = self.stats.peak_len.max(self.len() as u64);
    }

    /// Schedules `payload` to fire `delay` cycles from the current cycle.
    pub fn schedule_in(&mut self, delay: Cycle, payload: E) {
        self.schedule(self.now + delay, payload);
    }

    /// Schedules `payload` at `at` with a caller-supplied tie-breaking
    /// sequence number instead of the queue's own counter.
    ///
    /// This is the insertion primitive of the sharded PDES core: one global
    /// counter spans all shard queues so the merged pop order reproduces the
    /// single-queue `(cycle, seq)` order exactly. Unlike
    /// [`EventQueue::schedule`], the target bucket may already hold events
    /// with *larger* sequence numbers (an epoch-barrier handoff drains a
    /// message whose seq predates direct schedules into the same cycle), so
    /// the event is placed by ordered insertion from the back — O(1) for the
    /// common append case.
    ///
    /// Do not mix with [`EventQueue::schedule`] on the same queue: the
    /// internal counter is bypassed, and only the caller can keep seqs
    /// globally unique.
    pub fn schedule_with_seq(&mut self, at: Cycle, seq: u64, payload: E) {
        debug_assert!(at >= self.now, "event scheduled in the past: {at} < {}", self.now);
        self.stats.scheduled += 1;
        if at < self.horizon {
            let slot = (at & WHEEL_MASK) as usize;
            let bucket = &mut self.slots[slot];
            let mut idx = bucket.len();
            while idx > 0 && bucket[idx - 1].0 > seq {
                idx -= 1;
            }
            bucket.insert(idx, (seq, payload));
            self.mark(slot as u64);
            self.wheel_len += 1;
        } else {
            self.stats.far_spills += 1;
            self.far.push(FarEntry { at, seq, payload });
        }
        self.stats.peak_len = self.stats.peak_len.max(self.len() as u64);
    }

    /// The `(cycle, seq)` key of the next pending event, if any — the key
    /// [`EventQueue::pop`] would return next. Used by the sharded core to
    /// merge several shard queues into one global `(cycle, seq)` order.
    pub fn peek_key(&self) -> Option<(Cycle, u64)> {
        if self.wheel_len > 0 {
            // All wheel events precede all far events.
            let at = self.next_occupied(self.now).expect("wheel_len > 0 but no occupied slot");
            let &(seq, _) = self.slots[(at & WHEEL_MASK) as usize].front().expect("occupied slot is empty");
            Some((at, seq))
        } else {
            self.far.peek().map(|e| (e.at, e.seq))
        }
    }

    /// Advances the wheel window so that it starts at `at`, merging
    /// far-heap events that fall inside the new window into their buckets.
    /// Far events merge in `(cycle, seq)` order, and any direct schedule
    /// into those cycles can only happen afterwards (the cycles were
    /// outside the window until now), so buckets stay sorted by `seq`.
    fn advance_window(&mut self, at: Cycle) {
        self.horizon = at + WHEEL;
        while let Some(head) = self.far.peek() {
            if head.at >= self.horizon {
                break;
            }
            let FarEntry { at, seq, payload } = self.far.pop().unwrap();
            let slot = at & WHEEL_MASK;
            self.slots[slot as usize].push_back((seq, payload));
            self.mark(slot);
            self.wheel_len += 1;
            self.stats.far_merged += 1;
        }
    }

    /// The first cycle in `[from, horizon)` whose bucket is non-empty, or
    /// `None` if the wheel is empty in that range. O(WHEEL/64) worst case.
    fn next_occupied(&self, from: Cycle) -> Option<Cycle> {
        if self.wheel_len == 0 {
            return None;
        }
        // Scan the bitmap from `from`'s slot, wrapping once around the
        // wheel. Cycle values are reconstructed from the distance walked.
        let start = from & WHEEL_MASK;
        let mut word = (start / 64) as usize;
        let mut mask = !0u64 << (start % 64);
        let mut base = from - (start % 64); // cycle of bit 0 of `word`
        for _ in 0..=BITMAP_WORDS {
            let bits = self.occupied[word] & mask;
            if bits != 0 {
                let bit = bits.trailing_zeros() as u64;
                let slot_cycle = base + bit;
                // A set bit before `from`'s slot belongs to the wrapped
                // part of the window (cycle + WHEEL).
                let c = if slot_cycle < from { slot_cycle + WHEEL } else { slot_cycle };
                if c < self.horizon {
                    return Some(c);
                }
            }
            mask = !0;
            word += 1;
            base += 64;
            if word == BITMAP_WORDS {
                word = 0;
                base = from - (start % 64) - (start / 64) * 64 + WHEEL;
            }
        }
        None
    }

    /// Removes and returns the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let at = if self.wheel_len > 0 {
            // All wheel events precede all far events, so the earliest
            // pending event is in the wheel.
            self.next_occupied(self.now).expect("wheel_len > 0 but no occupied slot")
        } else {
            let head = self.far.peek()?;
            let at = head.at;
            self.advance_window(at);
            at
        };
        let slot = at & WHEEL_MASK;
        let (_, payload) = self.slots[slot as usize].pop_front().expect("occupied slot is empty");
        self.wheel_len -= 1;
        if self.slots[slot as usize].is_empty() {
            self.clear(slot);
        }
        debug_assert!(at >= self.now);
        self.now = at;
        if at + WHEEL > self.horizon {
            self.advance_window(at);
        }
        Some((at, payload))
    }

    /// The cycle of the next pending event, if any.
    pub fn peek_cycle(&self) -> Option<Cycle> {
        match self.next_occupied(self.now) {
            Some(c) => Some(c),
            None => self.far.peek().map(|e| e.at),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.far.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the lifetime counters.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Number of currently occupied bucket-wheel slots (of [`WHEEL`]).
    pub fn occupied_slots(&self) -> usize {
        self.occupied.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of events currently parked in the far-future heap.
    pub fn far_len(&self) -> usize {
        self.far.len()
    }

    /// Captures the queue's complete state without disturbing it: the
    /// clock, the sequence counter, the stats, and every pending event in
    /// exact `(cycle, seq)` pop order, including the far-future heap.
    pub fn snapshot(&self) -> QueueSnapshot<E>
    where
        E: Clone,
    {
        let mut entries = Vec::with_capacity(self.len());
        // The wheel covers exactly [now, horizon) and the cycle→slot
        // mapping is injective there, so every event in a non-empty
        // bucket belongs to the window cycle that maps to its slot.
        // Walking cycles in order (buckets are already seq-sorted) yields
        // the exact pop order of the wheel.
        for c in self.now..self.horizon {
            for (seq, payload) in &self.slots[(c & WHEEL_MASK) as usize] {
                entries.push((c, *seq, payload.clone()));
            }
        }
        // All wheel events precede all far events; the heap itself is
        // unordered internally, so sort its entries by (cycle, seq).
        let mut far: Vec<_> = self.far.iter().map(|e| (e.at, e.seq, e.payload.clone())).collect();
        far.sort_by_key(|&(at, seq, _)| (at, seq));
        entries.extend(far);
        QueueSnapshot { now: self.now, next_seq: self.next_seq, stats: self.stats, entries }
    }

    /// Rebuilds a queue from a [`QueueSnapshot`]. The restored queue pops
    /// the byte-identical `(cycle, seq, payload)` stream the snapshotted
    /// queue would have popped, and continues assigning the same sequence
    /// numbers to new events.
    pub fn restore(snap: QueueSnapshot<E>) -> Self {
        let mut q = EventQueue::new();
        q.now = snap.now;
        q.horizon = snap.now + WHEEL;
        for (at, seq, payload) in snap.entries {
            assert!(at >= q.now, "snapshot entry at {at} precedes its clock {}", q.now);
            // Entries arrive globally (cycle, seq)-sorted, so plain
            // bucket appends reproduce seq-sorted buckets.
            if at < q.horizon {
                let slot = at & WHEEL_MASK;
                q.slots[slot as usize].push_back((seq, payload));
                q.mark(slot);
                q.wheel_len += 1;
            } else {
                q.far.push(FarEntry { at, seq, payload });
            }
        }
        q.next_seq = snap.next_seq;
        q.stats = snap.stats;
        q
    }
}

/// The original binary-heap implementation, kept for differential testing:
/// the indexed queue above must pop byte-identical `(cycle, seq, payload)`
/// streams for any interleaving of operations.
#[cfg(test)]
pub mod legacy {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    use crate::Cycle;

    struct Entry<E> {
        at: Cycle,
        seq: u64,
        payload: E,
    }

    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl<E> Eq for Entry<E> {}
    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            (other.at, other.seq).cmp(&(self.at, self.seq))
        }
    }

    /// Reference min-ordered event queue over a single binary heap.
    pub struct HeapQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        next_seq: u64,
        now: Cycle,
    }

    impl<E> Default for HeapQueue<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E> HeapQueue<E> {
        pub fn new() -> Self {
            HeapQueue { heap: BinaryHeap::new(), next_seq: 0, now: 0 }
        }

        pub fn now(&self) -> Cycle {
            self.now
        }

        pub fn schedule(&mut self, at: Cycle, payload: E) {
            debug_assert!(at >= self.now, "event scheduled in the past: {at} < {}", self.now);
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry { at, seq, payload });
        }

        pub fn schedule_in(&mut self, delay: Cycle, payload: E) {
            self.schedule(self.now + delay, payload);
        }

        pub fn pop(&mut self) -> Option<(Cycle, E)> {
            let entry = self.heap.pop()?;
            self.now = entry.at;
            Some((entry.at, entry.payload))
        }

        pub fn peek_cycle(&self) -> Option<Cycle> {
            self.heap.peek().map(|e| e.at)
        }

        pub fn len(&self) -> usize {
            self.heap.len()
        }

        pub fn is_empty(&self) -> bool {
            self.heap.is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, 3);
        q.schedule(10, 1);
        q.schedule(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_cycle_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0);
        q.schedule(5, ());
        q.pop();
        assert_eq!(q.now(), 5);
        q.schedule_in(3, ());
        assert_eq!(q.pop(), Some((8, ())));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(9, ());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_fifo() {
        let mut q = EventQueue::new();
        q.schedule(4, "a");
        q.schedule(4, "b");
        assert_eq!(q.pop(), Some((4, "a")));
        // Scheduling another event at the same (current) cycle is allowed and
        // must fire after previously queued same-cycle events.
        q.schedule(4, "c");
        assert_eq!(q.pop(), Some((4, "b")));
        assert_eq!(q.pop(), Some((4, "c")));
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_cycle(), None);
        q.schedule(12, ());
        q.schedule(3, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_cycle(), Some(3));
    }

    #[test]
    fn far_future_events_cross_the_wheel_horizon() {
        let mut q = EventQueue::new();
        q.schedule(3, "near");
        q.schedule(5 * WHEEL, "far");
        q.schedule(5 * WHEEL, "far2");
        q.schedule(WHEEL + 7, "mid");
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((3, "near")));
        assert_eq!(q.pop(), Some((WHEEL + 7, "mid")));
        assert_eq!(q.peek_cycle(), Some(5 * WHEEL));
        // Same-cycle far events keep insertion order across the merge.
        assert_eq!(q.pop(), Some((5 * WHEEL, "far")));
        assert_eq!(q.pop(), Some((5 * WHEEL, "far2")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn far_then_near_interleaving_preserves_order() {
        let mut q = EventQueue::new();
        q.schedule(2 * WHEEL + 1, "early-seq"); // goes to the far heap
        let mut t = 0;
        // Walk time forward so 2*WHEEL+1 enters the wheel window, then
        // schedule directly into the same cycle: the far event must still
        // pop first (it has the smaller seq).
        while t + WHEEL < 2 * WHEEL + 2 {
            q.schedule(t + 10, "tick");
            let (at, _) = q.pop().unwrap();
            t = at;
        }
        q.schedule(2 * WHEEL + 1, "late-seq");
        assert_eq!(q.pop(), Some((2 * WHEEL + 1, "early-seq")));
        assert_eq!(q.pop(), Some((2 * WHEEL + 1, "late-seq")));
    }

    #[test]
    fn wheel_slot_reuse_across_windows() {
        // The same physical slot serves cycles c, c+WHEEL, c+2*WHEEL, ...;
        // popping must never see events from a later window early.
        let mut q = EventQueue::new();
        q.schedule(5, 0u32);
        assert_eq!(q.pop(), Some((5, 0)));
        for round in 1..5u32 {
            q.schedule(5 + round as u64 * WHEEL, round);
        }
        for round in 1..5u32 {
            assert_eq!(q.pop(), Some((5 + round as u64 * WHEEL, round)));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn stats_count_spills_merges_and_peak() {
        let mut q = EventQueue::new();
        assert_eq!(q.stats(), QueueStats::default());
        q.schedule(3, "near");
        q.schedule(WHEEL + 5, "far");
        q.schedule(3 * WHEEL, "farther");
        let s = q.stats();
        assert_eq!(s.scheduled, 3);
        assert_eq!(s.far_spills, 2);
        assert_eq!(s.far_merged, 0);
        assert_eq!(s.peak_len, 3);
        assert_eq!(q.occupied_slots(), 1);
        assert_eq!(q.far_len(), 2);
        // Drain: both far events must be merged back through the wheel.
        while q.pop().is_some() {}
        let s = q.stats();
        assert_eq!(s.far_merged, 2);
        assert_eq!(s.peak_len, 3, "peak is a high-water mark, not current depth");
        assert_eq!(q.occupied_slots(), 0);
        assert_eq!(q.far_len(), 0);
    }

    /// The exact horizon boundary: an event at `horizon - 1` goes to the
    /// wheel, at `horizon` to the far heap, and both pop in time order
    /// after the window advances across them.
    #[test]
    fn far_heap_migration_at_the_exact_horizon_boundary() {
        let mut q = EventQueue::new();
        q.schedule(WHEEL - 1, "last-wheel");
        q.schedule(WHEEL, "first-far");
        assert_eq!(q.far_len(), 1, "horizon cycle itself must spill");
        assert_eq!(q.stats().far_spills, 1);
        assert_eq!(q.pop(), Some((WHEEL - 1, "last-wheel")));
        // Popping at WHEEL-1 advanced the window; the spilled event is now
        // a wheel resident.
        assert_eq!(q.far_len(), 0);
        assert_eq!(q.stats().far_merged, 1);
        assert_eq!(q.pop(), Some((WHEEL, "first-far")));
        assert_eq!(q.pop(), None);
    }

    /// Slot 1023 is the last physical slot; cycles 1023 and 1023 + WHEEL
    /// share it across consecutive windows. The wrap from slot 1023 back
    /// to slot 0 must not reorder or lose events.
    #[test]
    fn wrap_around_at_slot_1023() {
        let mut q = EventQueue::new();
        q.schedule(WHEEL - 1, "slot1023");
        q.schedule(WHEEL + 1, "slot1-next-window");
        q.schedule(2 * WHEEL - 1, "slot1023-next-window");
        assert_eq!(q.pop(), Some((WHEEL - 1, "slot1023")));
        assert_eq!(q.pop(), Some((WHEEL + 1, "slot1-next-window")));
        assert_eq!(q.pop(), Some((2 * WHEEL - 1, "slot1023-next-window")));
        assert_eq!(q.pop(), None);

        // Same boundary with the scan starting mid-window: an occupied
        // slot numerically *before* the current slot belongs to the
        // wrapped half of the window and must still be found.
        let mut q = EventQueue::new();
        q.schedule(WHEEL / 2, ());
        q.pop();
        q.schedule(WHEEL / 2 + WHEEL_MASK, ()); // wraps to slot (WHEEL/2 - 1)
        assert_eq!(q.pop(), Some((WHEEL / 2 + WHEEL_MASK, ())));
    }

    /// Seeded property test: under heavy same-slot load — hundreds of
    /// events landing on one cycle from both direct schedules and far-heap
    /// merges — pop order must equal global insertion (seq) order.
    #[test]
    fn same_cycle_seq_order_under_heavy_same_slot_load() {
        for seed in 0..20u64 {
            let mut rng = crate::SplitMix64::new(0x5105_0000 + seed);
            let mut q = EventQueue::new();
            let target = 2 * WHEEL + 513; // reached only via a far spill
            let mut expect = Vec::new();
            let mut payload = 0u64;
            // Phase 1: pile events onto `target` while it is beyond the
            // horizon (spills) and onto a warm-up tick stream.
            for _ in 0..200 {
                if rng.next_below(2) == 0 {
                    q.schedule(target, payload);
                    expect.push(payload);
                    payload += 1;
                } else {
                    q.schedule(rng.next_below(WHEEL / 2), u64::MAX);
                }
            }
            // Drain the warm-up events; the window advance merges the
            // far pile into the wheel.
            while let Some((at, p)) = q.pop() {
                if at == target {
                    // Phase 2 entry: first target event reached. Put it back
                    // conceptually by checking order below instead.
                    assert_eq!(p, expect[0], "seed {seed}: merge broke seq order");
                    expect.remove(0);
                    break;
                }
                assert_eq!(p, u64::MAX, "seed {seed}: unexpected payload");
            }
            // Phase 3: schedule more events directly onto the same (now
            // in-window, current) cycle; they must pop after every earlier
            // same-cycle event, in insertion order.
            for _ in 0..100 {
                q.schedule(target, payload);
                expect.push(payload);
                payload += 1;
            }
            for want in expect {
                assert_eq!(q.pop(), Some((target, want)), "seed {seed}: same-slot order broke");
            }
            assert_eq!(q.pop(), None, "seed {seed}: stray events");
        }
    }

    #[test]
    fn peek_key_tracks_the_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_key(), None);
        q.schedule(10, "b"); // seq 0
        q.schedule(5, "a"); // seq 1
        assert_eq!(q.peek_key(), Some((5, 1)));
        assert_eq!(q.pop(), Some((5, "a")));
        assert_eq!(q.peek_key(), Some((10, 0)));
        q.schedule(10, "c"); // seq 2, behind "b" in the same bucket
        assert_eq!(q.peek_key(), Some((10, 0)));
        q.pop();
        assert_eq!(q.peek_key(), Some((10, 2)));
        q.pop();
        assert_eq!(q.peek_key(), None);
        // Far-heap-only queues peek into the heap.
        q.schedule(q.now() + 3 * WHEEL, "far");
        assert_eq!(q.peek_key(), Some((q.now() + 3 * WHEEL, 3)));
    }

    #[test]
    fn schedule_with_seq_orders_a_drained_handoff_before_later_direct_schedules() {
        // The barrier-drain shape: a cross-shard message carries seq 1 but
        // reaches the destination queue only after direct schedules with
        // larger seqs already landed in its bucket.
        let mut q: EventQueue<&str> = EventQueue::new();
        q.schedule_with_seq(100, 7, "direct-mid");
        q.schedule_with_seq(100, 9, "direct-late");
        q.schedule_with_seq(50, 3, "earlier-cycle");
        q.schedule_with_seq(100, 1, "handoff-early"); // ordered insert from the back
        q.schedule_with_seq(100, 8, "direct-between");
        assert_eq!(q.peek_key(), Some((50, 3)));
        assert_eq!(q.pop(), Some((50, "earlier-cycle")));
        assert_eq!(q.pop(), Some((100, "handoff-early")));
        assert_eq!(q.pop(), Some((100, "direct-mid")));
        assert_eq!(q.pop(), Some((100, "direct-between")));
        assert_eq!(q.pop(), Some((100, "direct-late")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn schedule_with_seq_far_spills_keep_the_given_seq() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule_with_seq(2 * WHEEL, 5, 50);
        q.schedule_with_seq(2 * WHEEL, 2, 20); // smaller seq pushed later
        q.schedule_with_seq(1, 0, 0);
        assert_eq!(q.stats().far_spills, 2);
        assert_eq!(q.pop(), Some((1, 0)));
        // The merge back into the wheel follows (cycle, seq) heap order.
        assert_eq!(q.pop(), Some((2 * WHEEL, 20)));
        assert_eq!(q.pop(), Some((2 * WHEEL, 50)));
        assert_eq!(q.stats().far_merged, 2);
    }

    #[test]
    fn schedule_with_seq_matches_schedule_for_monotone_seqs() {
        // Driving one queue through schedule() and another through
        // schedule_with_seq() with the same monotone seq stream must
        // produce identical pops — the sharded core's shards=1 case.
        let mut rng = crate::SplitMix64::new(0x5eed_5eed);
        let mut a: EventQueue<u64> = EventQueue::new();
        let mut b: EventQueue<u64> = EventQueue::new();
        for i in 0..2000u64 {
            let at = a.now() + rng.next_below(2 * WHEEL);
            a.schedule(at, i);
            // The monotone seq stream is exactly the iteration index.
            b.schedule_with_seq(at, i, i);
            if rng.next_below(2) == 0 {
                assert_eq!(a.peek_key(), b.peek_key());
                assert_eq!(a.pop(), b.pop());
            }
        }
        loop {
            let x = a.pop();
            assert_eq!(x, b.pop());
            if x.is_none() {
                break;
            }
        }
    }

    mod snapshotting {
        use super::*;
        use crate::SplitMix64;

        /// Random fill, snapshot at a random point, then the restored
        /// queue and the original must pop identical streams (and assign
        /// identical seqs to post-restore schedules).
        #[test]
        fn snapshot_restore_pops_identically() {
            for seed in 0..50u64 {
                let mut rng = SplitMix64::new(0xc0de + seed);
                let mut q: EventQueue<u64> = EventQueue::new();
                let mut payload = 0u64;
                for _ in 0..300 {
                    match rng.next_below(3) {
                        0 | 1 => {
                            let delta = match rng.next_below(8) {
                                0 => 0,
                                1..=5 => rng.next_below(64),
                                6 => rng.next_below(2 * WHEEL),
                                _ => WHEEL * (2 + rng.next_below(6)),
                            };
                            payload += 1;
                            q.schedule(q.now() + delta, payload);
                        }
                        _ => {
                            q.pop();
                        }
                    }
                }
                let snap = q.snapshot();
                let mut r = EventQueue::restore(snap.clone());
                assert_eq!(r.now(), q.now(), "seed {seed}");
                assert_eq!(r.len(), q.len(), "seed {seed}");
                assert_eq!(r.snapshot(), snap, "seed {seed}: re-snapshot differs");
                // Continue both with identical traffic; streams must match.
                for _ in 0..200 {
                    match rng.next_below(3) {
                        0 => {
                            let delta = rng.next_below(3 * WHEEL);
                            payload += 1;
                            q.schedule(q.now() + delta, payload);
                            r.schedule(r.now() + delta, payload);
                        }
                        _ => assert_eq!(q.pop(), r.pop(), "seed {seed}"),
                    }
                }
                loop {
                    let a = q.pop();
                    assert_eq!(a, r.pop(), "seed {seed}: drain mismatch");
                    if a.is_none() {
                        break;
                    }
                }
            }
        }

        #[test]
        fn empty_queue_round_trips() {
            let q: EventQueue<u32> = EventQueue::new();
            let r = EventQueue::restore(q.snapshot());
            assert!(r.is_empty());
            assert_eq!(r.now(), 0);
        }

        #[test]
        fn far_heap_survives_the_round_trip() {
            let mut q: EventQueue<&str> = EventQueue::new();
            q.schedule(5, "near");
            q.schedule(3 * WHEEL, "far-b"); // seq 1
            q.schedule(3 * WHEEL, "far-c"); // seq 2
            q.schedule(2 * WHEEL, "far-a");
            let snap = q.snapshot();
            assert_eq!(snap.entries.len(), 4);
            // Pop order: wheel first, then far sorted by (cycle, seq).
            let keys: Vec<_> = snap.entries.iter().map(|&(at, seq, _)| (at, seq)).collect();
            assert_eq!(keys, vec![(5, 0), (2 * WHEEL, 3), (3 * WHEEL, 1), (3 * WHEEL, 2)]);
            let mut r = EventQueue::restore(snap);
            assert_eq!(r.far_len(), 3, "far events restore beyond the horizon");
            assert_eq!(r.pop(), Some((5, "near")));
            assert_eq!(r.pop(), Some((2 * WHEEL, "far-a")));
            assert_eq!(r.pop(), Some((3 * WHEEL, "far-b")));
            assert_eq!(r.pop(), Some((3 * WHEEL, "far-c")));
            assert_eq!(r.pop(), None);
        }

        #[test]
        fn mid_window_snapshot_preserves_wrapped_slots() {
            // Advance the clock to mid-window so the wheel wraps: slots
            // numerically below now's slot hold later cycles.
            let mut q: EventQueue<u64> = EventQueue::new();
            q.schedule(WHEEL / 2, 0);
            q.pop();
            q.schedule(WHEEL / 2 + WHEEL_MASK, 1); // wraps to slot WHEEL/2 - 1
            q.schedule(WHEEL / 2 + 1, 2);
            let mut r = EventQueue::restore(q.snapshot());
            assert_eq!(r.pop(), Some((WHEEL / 2 + 1, 2)));
            assert_eq!(r.pop(), Some((WHEEL / 2 + WHEEL_MASK, 1)));
            assert_eq!(r.pop(), None);
        }

        #[test]
        fn restored_queue_continues_the_seq_stream() {
            let mut q: EventQueue<u32> = EventQueue::new();
            q.schedule(10, 0); // seq 0
            let mut r = EventQueue::restore(q.snapshot());
            q.schedule(10, 1); // seq 1 in the original...
            r.schedule(10, 1); // ...and in the restored copy
            assert_eq!(q.snapshot(), r.snapshot());
        }
    }

    mod differential {
        //! Property-based differential tests: the indexed queue and the
        //! legacy binary-heap queue must produce identical
        //! `(cycle, seq-order, payload)` streams for arbitrary operation
        //! interleavings. `proptest` is not vendored in this workspace, so
        //! the generator is a seeded [`SplitMix64`] driving many random
        //! cases (including same-cycle ties and zero-delay self-schedules);
        //! failures print the seed for exact replay.

        use super::super::legacy::HeapQueue;
        use super::*;
        use crate::SplitMix64;

        /// Drives both queues through an identical random op sequence and
        /// asserts every observable matches at every step.
        fn run_case(seed: u64, ops: usize) {
            let mut rng = SplitMix64::new(seed);
            let mut new_q: EventQueue<u64> = EventQueue::new();
            let mut old_q: HeapQueue<u64> = HeapQueue::new();
            let mut payload = 0u64;
            for step in 0..ops {
                let ctx = || format!("seed {seed} step {step}");
                match rng.next_below(10) {
                    // Weight scheduling ~1:1 with popping so queues stay
                    // populated but drain regularly.
                    0..=2 => {
                        // Absolute schedule, biased to land near `now` so
                        // same-cycle ties are common; occasionally far
                        // beyond the wheel horizon.
                        let delta = match rng.next_below(10) {
                            0 => 0, // exactly at `now`: a same-cycle tie
                            1..=6 => rng.next_below(64),
                            7..=8 => rng.next_below(2 * WHEEL),
                            _ => WHEEL * (2 + rng.next_below(8)),
                        };
                        payload += 1;
                        new_q.schedule(new_q.now() + delta, payload);
                        old_q.schedule(old_q.now() + delta, payload);
                    }
                    3 => {
                        let delay = match rng.next_below(4) {
                            0 => 0, // zero-delay self-schedule
                            1..=2 => rng.next_below(32),
                            _ => rng.next_below(4 * WHEEL),
                        };
                        payload += 1;
                        new_q.schedule_in(delay, payload);
                        old_q.schedule_in(delay, payload);
                    }
                    4..=7 => {
                        let n = new_q.pop();
                        let o = old_q.pop();
                        assert_eq!(n, o, "pop mismatch at {}", ctx());
                        if let Some((at, _)) = n {
                            // A popped event may reschedule at its own
                            // cycle (zero-delay self-schedule), the
                            // pattern `Ev::CpuStep` re-entry relies on.
                            if rng.next_below(4) == 0 {
                                payload += 1;
                                new_q.schedule(at, payload);
                                old_q.schedule(at, payload);
                            }
                        }
                    }
                    _ => {
                        assert_eq!(new_q.len(), old_q.len(), "len mismatch at {}", ctx());
                        assert_eq!(new_q.peek_cycle(), old_q.peek_cycle(), "peek mismatch at {}", ctx());
                        assert_eq!(new_q.now(), old_q.now(), "now mismatch at {}", ctx());
                    }
                }
            }
            // Drain both queues completely; tails must match too.
            loop {
                let n = new_q.pop();
                let o = old_q.pop();
                assert_eq!(n, o, "drain mismatch for seed {seed}");
                if n.is_none() {
                    break;
                }
            }
        }

        #[test]
        fn random_interleavings_match_legacy_heap() {
            for seed in 0..200 {
                run_case(seed, 400);
            }
        }

        #[test]
        fn long_dense_interleaving_matches_legacy_heap() {
            run_case(0xfeed_beef, 20_000);
        }

        #[test]
        fn all_ties_single_cycle() {
            let mut new_q = EventQueue::new();
            let mut old_q = HeapQueue::new();
            for i in 0..1000u64 {
                new_q.schedule(42, i);
                old_q.schedule(42, i);
            }
            for _ in 0..1000 {
                assert_eq!(new_q.pop(), old_q.pop());
            }
        }

        #[test]
        fn zero_delay_self_schedule_chain() {
            // A chain of events each rescheduling at the current cycle:
            // the queue must honor seq order without advancing time.
            let mut new_q = EventQueue::new();
            let mut old_q = HeapQueue::new();
            new_q.schedule(9, 0u64);
            old_q.schedule(9, 0u64);
            for i in 1..100u64 {
                assert_eq!(new_q.pop(), old_q.pop());
                new_q.schedule_in(0, i);
                old_q.schedule_in(0, i);
            }
            for _ in 0..100 {
                assert_eq!(new_q.pop(), old_q.pop());
            }
        }
    }
}

//! Deterministic event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Cycle;

/// An entry in the event queue: fires at `at`, carrying payload `E`.
///
/// `seq` breaks ties between events scheduled for the same cycle: events
/// inserted earlier fire earlier. This makes the whole simulation
/// deterministic regardless of heap internals.
struct Entry<E> {
    at: Cycle,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (cycle, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A min-ordered event queue over simulated cycles with FIFO tie-breaking.
///
/// ```
/// use sim_engine::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(10, "b");
/// q.schedule(5, "a");
/// q.schedule(10, "c");
/// assert_eq!(q.pop(), Some((5, "a")));
/// assert_eq!(q.pop(), Some((10, "b"))); // same-cycle events pop in insertion order
/// assert_eq!(q.pop(), Some((10, "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Cycle,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at cycle 0.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now: 0 }
    }

    /// The cycle of the most recently popped event (0 before any pop).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Schedules `payload` to fire at absolute cycle `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the past (before the last popped event); the
    /// simulator never rewinds time.
    pub fn schedule(&mut self, at: Cycle, payload: E) {
        assert!(at >= self.now, "event scheduled in the past: {at} < {}", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Schedules `payload` to fire `delay` cycles from the current cycle.
    pub fn schedule_in(&mut self, delay: Cycle, payload: E) {
        self.schedule(self.now + delay, payload);
    }

    /// Removes and returns the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, entry.payload))
    }

    /// The cycle of the next pending event, if any.
    pub fn peek_cycle(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, 3);
        q.schedule(10, 1);
        q.schedule(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_cycle_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0);
        q.schedule(5, ());
        q.pop();
        assert_eq!(q.now(), 5);
        q.schedule_in(3, ());
        assert_eq!(q.pop(), Some((8, ())));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(9, ());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_fifo() {
        let mut q = EventQueue::new();
        q.schedule(4, "a");
        q.schedule(4, "b");
        assert_eq!(q.pop(), Some((4, "a")));
        // Scheduling another event at the same (current) cycle is allowed and
        // must fire after previously queued same-cycle events.
        q.schedule(4, "c");
        assert_eq!(q.pop(), Some((4, "b")));
        assert_eq!(q.pop(), Some((4, "c")));
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_cycle(), None);
        q.schedule(12, ());
        q.schedule(3, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_cycle(), Some(3));
    }
}

//! Versioned, digest-sealed binary snapshot encoding.
//!
//! Snapshots serialize the complete simulation state into a flat byte
//! blob so a run can be checkpointed, restored, and replayed. The
//! encoding is deliberately primitive — little-endian fixed-width
//! integers with length-prefixed byte strings, written and read in
//! matching order by hand — because the workspace has no serialization
//! dependency and the format must stay bit-stable across builds.
//!
//! Framing (see [`seal`] / [`open`]):
//!
//! ```text
//! +----------+---------+-----------------+-------------------+
//! | magic 8B | version | payload (N)     | digest 16B        |
//! | PPCSNAP1 | u32 LE  | writer-defined  | FNV-style 128     |
//! +----------+---------+-----------------+-------------------+
//! ```
//!
//! The trailing digest is a 128-bit word-at-a-time FNV-style hash of
//! everything before it (magic, version, payload), so truncation and
//! bit-flips are detected before any payload decoding runs, and the
//! version check rejects blobs from older format revisions outright.

/// Leading magic for every sealed snapshot blob.
pub const SNAP_MAGIC: &[u8; 8] = b"PPCSNAP1";

/// Decode failure; every variant names what the reader refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapError {
    /// The blob does not start with [`SNAP_MAGIC`].
    BadMagic,
    /// The format version does not match what this build writes.
    Version { found: u32, expected: u32 },
    /// The blob ends before a declared field does.
    Truncated,
    /// A decoded value is structurally impossible (bad tag, bad flag).
    Corrupt(&'static str),
    /// The trailing digest does not match the blob contents.
    DigestMismatch,
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::BadMagic => write!(f, "snapshot blob lacks the PPCSNAP1 magic"),
            SnapError::Version { found, expected } => {
                write!(f, "snapshot format version {found} (this build expects {expected})")
            }
            SnapError::Truncated => write!(f, "snapshot blob is truncated"),
            SnapError::Corrupt(what) => write!(f, "snapshot blob is corrupt: {what}"),
            SnapError::DigestMismatch => {
                write!(f, "snapshot digest mismatch (blob corrupted after sealing)")
            }
        }
    }
}

impl std::error::Error for SnapError {}

/// Little-endian append-only encoder. Field order is the schema: the
/// matching [`SnapReader`] must read fields back in the exact order
/// they were written.
#[derive(Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    /// A writer with `n` bytes preallocated — checkpoint blobs run to
    /// ~100KB, so growing from empty costs several reallocation copies.
    pub fn with_capacity(n: usize) -> Self {
        SnapWriter { buf: Vec::with_capacity(n) }
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A `u32` slice as consecutive little-endian words (no length
    /// prefix; the caller writes the count). One reservation up front
    /// keeps the hot checkpoint path out of incremental growth.
    pub fn u32_slice(&mut self, ws: &[u32]) {
        self.buf.reserve(ws.len() * 4);
        for &w in ws {
            self.buf.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// `usize` is always encoded as `u64` so blobs are portable across
    /// pointer widths.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.usize(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// `Option<u64>` as a flag byte plus the value when present.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.bool(false),
            Some(v) => {
                self.bool(true);
                self.u64(v);
            }
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Wraps the accumulated payload in the sealed frame: magic,
    /// version, payload, trailing digest.
    pub fn seal(self, version: u32) -> Vec<u8> {
        seal(version, &self.buf)
    }
}

/// Checked little-endian decoder over a sealed payload. Every read
/// returns [`SnapError::Truncated`] rather than panicking when the
/// blob ends early.
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let end = self.pos.checked_add(n).ok_or(SnapError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Corrupt("bool flag outside {0,1}")),
        }
    }

    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::Corrupt("length overflows usize"))
    }

    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.usize()?;
        self.take(n)
    }

    pub fn str(&mut self) -> Result<&'a str, SnapError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| SnapError::Corrupt("string is not UTF-8"))
    }

    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        Ok(if self.bool()? { Some(self.u64()?) } else { None })
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the payload was consumed exactly; trailing garbage means
    /// the writer and reader disagree about the schema.
    pub fn finish(self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::Corrupt("trailing bytes after the last field"))
        }
    }
}

fn digest_of(bytes: &[u8]) -> [u8; 16] {
    // Word-at-a-time variant of the [`StableHasher`] mixing. Checkpoint
    // blobs run to ~100KB and are digested on every periodic snapshot, so
    // the byte-wise hasher would dominate the checkpoint cost; the frame
    // digest only ever has to agree between `seal` and `open` within one
    // build, not with any other hash in the workspace.
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut lo = 0xcbf2_9ce4_8422_2325_u64 ^ (bytes.len() as u64).wrapping_mul(PRIME);
    let mut hi = lo ^ 0x9e37_79b9_7f4a_7c15;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let v = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        lo = (lo ^ v).wrapping_mul(PRIME);
        hi = (hi ^ v.rotate_left(32)).wrapping_mul(PRIME);
        hi = hi.rotate_left(23) ^ lo;
    }
    let mut last = [0u8; 8];
    last[..chunks.remainder().len()].copy_from_slice(chunks.remainder());
    let v = u64::from_le_bytes(last);
    lo = (lo ^ v).wrapping_mul(PRIME);
    hi = (hi ^ v.rotate_left(32)).wrapping_mul(PRIME);
    hi = hi.rotate_left(23) ^ lo;
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&lo.to_le_bytes());
    out[8..].copy_from_slice(&hi.to_le_bytes());
    out
}

/// Seals a payload into the framed blob: magic, version, payload,
/// trailing 128-bit digest over everything before it.
pub fn seal(version: u32, payload: &[u8]) -> Vec<u8> {
    let mut blob = Vec::with_capacity(SNAP_MAGIC.len() + 4 + payload.len() + 16);
    blob.extend_from_slice(SNAP_MAGIC);
    blob.extend_from_slice(&version.to_le_bytes());
    blob.extend_from_slice(payload);
    let digest = digest_of(&blob);
    blob.extend_from_slice(&digest);
    blob
}

/// Opens a sealed blob: verifies magic, version, and the trailing
/// digest, then returns the payload slice for a [`SnapReader`].
pub fn open(blob: &[u8], expected_version: u32) -> Result<&[u8], SnapError> {
    let header = SNAP_MAGIC.len() + 4;
    if blob.len() < header + 16 {
        return Err(SnapError::Truncated);
    }
    if &blob[..SNAP_MAGIC.len()] != SNAP_MAGIC {
        return Err(SnapError::BadMagic);
    }
    let found = u32::from_le_bytes(blob[SNAP_MAGIC.len()..header].try_into().unwrap());
    if found != expected_version {
        return Err(SnapError::Version { found, expected: expected_version });
    }
    let (body, digest) = blob.split_at(blob.len() - 16);
    if digest_of(body) != *digest {
        return Err(SnapError::DigestMismatch);
    }
    Ok(&body[header..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_every_primitive() {
        let mut w = SnapWriter::new();
        w.u8(0xab);
        w.bool(true);
        w.bool(false);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 7);
        w.usize(12345);
        w.bytes(&[1, 2, 3]);
        w.str("wormhole");
        w.opt_u64(None);
        w.opt_u64(Some(99));
        let blob = w.seal(3);

        let payload = open(&blob, 3).unwrap();
        let mut r = SnapReader::new(payload);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 7);
        assert_eq!(r.usize().unwrap(), 12345);
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.str().unwrap(), "wormhole");
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_u64().unwrap(), Some(99));
        r.finish().unwrap();
    }

    #[test]
    fn empty_payload_seals_and_opens() {
        let blob = SnapWriter::new().seal(1);
        let payload = open(&blob, 1).unwrap();
        assert!(payload.is_empty());
        SnapReader::new(payload).finish().unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut blob = SnapWriter::new().seal(1);
        blob[0] ^= 0xff;
        assert_eq!(open(&blob, 1), Err(SnapError::BadMagic));
    }

    #[test]
    fn version_mismatch_is_rejected_with_both_versions() {
        let mut w = SnapWriter::new();
        w.u64(42);
        let blob = w.seal(2);
        assert_eq!(open(&blob, 5), Err(SnapError::Version { found: 2, expected: 5 }));
    }

    #[test]
    fn truncation_is_rejected() {
        let mut w = SnapWriter::new();
        w.bytes(&[0u8; 64]);
        let blob = w.seal(1);
        // Cuts inside the frame header are reported as truncation; cuts
        // that leave a parseable frame lose payload or digest bytes and
        // fail the digest check instead. Either way: refused.
        for cut in [0, 7, 11, 27] {
            assert_eq!(open(&blob[..cut], 1), Err(SnapError::Truncated), "cut at {cut}");
        }
        for cut in [28, blob.len() - 17, blob.len() - 1] {
            assert_eq!(open(&blob[..cut], 1), Err(SnapError::DigestMismatch), "cut at {cut}");
        }
    }

    #[test]
    fn every_single_bit_flip_is_caught() {
        let mut w = SnapWriter::new();
        w.u64(0x0123_4567_89ab_cdef);
        w.str("digest me");
        let blob = w.seal(1);
        // Flip one bit per byte across the entire blob (including the
        // digest itself): open() must refuse every mutant.
        for i in 0..blob.len() {
            let mut bad = blob.clone();
            bad[i] ^= 1 << (i % 8);
            assert!(open(&bad, 1).is_err(), "bit flip at byte {i} accepted");
        }
    }

    #[test]
    fn reader_catches_truncated_fields_inside_payload() {
        let mut w = SnapWriter::new();
        w.u32(7);
        let payload = w.into_vec();
        let mut r = SnapReader::new(&payload);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u64(), Err(SnapError::Truncated));
    }

    #[test]
    fn reader_rejects_trailing_garbage() {
        let mut w = SnapWriter::new();
        w.u8(1);
        w.u8(2);
        let payload = w.into_vec();
        let mut r = SnapReader::new(&payload);
        assert_eq!(r.u8().unwrap(), 1);
        assert!(r.finish().is_err());
    }

    #[test]
    fn declared_length_beyond_blob_is_truncation_not_panic() {
        let mut w = SnapWriter::new();
        w.usize(1 << 40); // a length prefix with no bytes behind it
        let payload = w.into_vec();
        let mut r = SnapReader::new(&payload);
        assert_eq!(r.bytes(), Err(SnapError::Truncated));
    }
}

//! A small, stable content hasher for cache keys.
//!
//! `std::hash::DefaultHasher` is explicitly unstable across Rust releases,
//! which would silently invalidate (or worse, alias) on-disk memoization
//! keys across toolchain upgrades. This hasher is two independent FNV-1a
//! lanes producing a 128-bit value whose byte-for-byte definition lives in
//! this repository, so a key means the same thing forever.

/// Two-lane FNV-1a accumulator producing a 128-bit digest.
///
/// ```
/// use sim_engine::StableHasher;
///
/// let mut a = StableHasher::new();
/// a.write_str("config");
/// a.write_u64(42);
/// let mut b = StableHasher::new();
/// b.write_str("config");
/// b.write_u64(42);
/// assert_eq!(a.finish_hex(), b.finish_hex());
/// assert_eq!(a.finish_hex().len(), 32);
/// ```
#[derive(Debug, Clone)]
pub struct StableHasher {
    lo: u64,
    hi: u64,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x00000100000001b3;
/// Second-lane offset: the FNV offset basis xored with an arbitrary
/// constant so the lanes decorrelate from the first byte on.
const FNV_OFFSET_HI: u64 = FNV_OFFSET ^ 0x9e3779b97f4a7c15;

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A fresh hasher.
    pub fn new() -> Self {
        StableHasher { lo: FNV_OFFSET, hi: FNV_OFFSET_HI }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.lo = (self.lo ^ b as u64).wrapping_mul(FNV_PRIME);
            self.hi = (self.hi ^ b as u64).wrapping_mul(FNV_PRIME);
            // Stir the high lane with the low one so the lanes stay
            // independent even though they share the FNV prime.
            self.hi = self.hi.rotate_left(23) ^ self.lo;
        }
    }

    /// Absorbs a string, length-prefixed so `("ab","c")` ≠ `("a","bc")`.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The 128-bit digest as `(low, high)` lanes.
    pub fn finish128(&self) -> (u64, u64) {
        (self.lo, self.hi)
    }

    /// The digest as 32 lowercase hex characters.
    pub fn finish_hex(&self) -> String {
        format!("{:016x}{:016x}", self.lo, self.hi)
    }
}

/// Convenience: the 64-bit (low-lane) digest of one byte string.
pub fn stable_hash64(bytes: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write(bytes);
    h.finish128().0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = StableHasher::new();
        a.write_str("x");
        a.write_str("y");
        let mut b = StableHasher::new();
        b.write_str("y");
        b.write_str("x");
        assert_ne!(a.finish_hex(), b.finish_hex());
        let mut c = StableHasher::new();
        c.write_str("x");
        c.write_str("y");
        assert_eq!(a.finish_hex(), c.finish_hex());
    }

    #[test]
    fn length_prefix_disambiguates_concatenation() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish_hex(), b.finish_hex());
    }

    #[test]
    fn pinned_value_never_changes() {
        // If this assertion ever fails, the hash definition changed and
        // every on-disk sweep-cache key silently means something new —
        // bump the cache schema version instead of editing the hash.
        let mut h = StableHasher::new();
        h.write_str("ppc");
        h.write_u64(1997);
        assert_eq!(h.finish_hex(), "66dcf43953a672fbad269fd19f8f4237");
    }

    #[test]
    fn stable_hash64_matches_low_lane() {
        let mut h = StableHasher::new();
        h.write(b"abc");
        assert_eq!(stable_hash64(b"abc"), h.finish128().0);
    }
}

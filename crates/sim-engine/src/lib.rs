//! Deterministic discrete-event simulation engine.
//!
//! This crate provides the time base shared by every component of the
//! `ppc-coherence` multiprocessor simulator:
//!
//! * [`Cycle`] — the simulated processor-cycle clock (network and memory run
//!   at the same clock, as in the paper's methodology section).
//! * [`EventQueue`] — a binary-heap event queue with deterministic
//!   tie-breaking: events scheduled for the same cycle fire in insertion
//!   order, so a simulation run is a pure function of its configuration.
//! * [`FifoServer`] — an earliest-free-time resource model used for memory
//!   modules and network-interface ports, which are the only contention
//!   points the paper models.
//! * [`SplitMix64`] — a tiny deterministic PRNG for the workload variants
//!   that need bounded pseudo-random delays.

pub mod pdes;
pub mod queue;
pub mod rng;
pub mod server;
pub mod snapshot;
pub mod stable_hash;

pub use pdes::{ShardCounters, ShardPlan, ShardedQueue, ShardedSnapshot};
pub use queue::{EventQueue, QueueSnapshot, QueueStats};
pub use rng::SplitMix64;
pub use server::FifoServer;
pub use snapshot::{SnapError, SnapReader, SnapWriter, SNAP_MAGIC};
pub use stable_hash::{stable_hash64, StableHasher};

/// A point in simulated time, measured in processor cycles.
///
/// The simulated machine is fully synchronous: the network and the memory
/// modules are clocked at the processor frequency (Section 3.1 of the
/// paper), so a single `u64` cycle count suffices for every component.
pub type Cycle = u64;

/// Identifier of a node (processor + cache + memory + network interface).
pub type NodeId = usize;

//! The mini-ISA interpreted by the simulated processors.
//!
//! The paper drives its simulator with MINT, executing real MIPS binaries.
//! Our substitute is a small register machine whose instruction set covers
//! exactly what the Section 2 pseudo-code needs: loads/stores to shared
//! memory, the three atomic primitives, a release fence, a user-level block
//! flush, busy-wait spins, bounded delays (for critical-section work), and
//! ordinary ALU/branch instructions. Synchronization kernels are built as
//! per-processor [`Program`]s with the assembler-style [`ProgramBuilder`].
//!
//! The crate also ships a timing-free [`reference::RefMachine`] that executes
//! programs under sequential consistency with a configurable interleaving;
//! integration tests diff its final memory against the cycle-accurate
//! simulator to validate kernel logic independently of protocol timing.

pub mod builder;
pub mod disasm;
pub mod instr;
pub mod reference;

pub use builder::ProgramBuilder;
pub use disasm::ProgramStats;
pub use instr::{AluOp, Instr, Program, Reg, SyncOp, NUM_REGS};

//! Instruction definitions.

/// A register index (processors have [`NUM_REGS`] general registers).
pub type Reg = usize;

/// Number of general-purpose registers per processor.
pub const NUM_REGS: usize = 16;

/// ALU operations. Comparisons produce 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (by rb & 31).
    Shl,
    /// Logical shift right (by rb & 31).
    Shr,
    /// Unsigned less-than (0/1).
    Lt,
    /// Equality (0/1).
    Eq,
    /// Inequality (0/1).
    Ne,
    /// Unsigned modulo (rb must be nonzero).
    Mod,
}

impl AluOp {
    /// Applies the operation.
    pub fn apply(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl(b),
            AluOp::Shr => a.wrapping_shr(b),
            AluOp::Lt => (a < b) as u32,
            AluOp::Eq => (a == b) as u32,
            AluOp::Ne => (a != b) as u32,
            AluOp::Mod => a % b,
        }
    }
}

/// A synchronization-episode event carried by the zero-cost [`Instr::Sync`]
/// marker. Lock kernels emit the attempt/acquired/released triple around
/// their real spin-based acquire and release paths; barrier kernels bracket
/// each episode with arrive/depart. The machine's critical-path profiler
/// turns the stream into per-lock handoff chains and per-barrier episodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SyncOp {
    /// The processor starts contending for a lock.
    AcquireAttempt,
    /// The processor now holds the lock.
    Acquired,
    /// The processor gave the lock up (handoff point).
    Released,
    /// The processor reached a barrier.
    BarrierArrive,
    /// The processor left the barrier (saw the release).
    BarrierDepart,
}

impl SyncOp {
    /// Stable name used in disassembly, reports, and tests.
    pub fn name(self) -> &'static str {
        match self {
            SyncOp::AcquireAttempt => "acquire-attempt",
            SyncOp::Acquired => "acquired",
            SyncOp::Released => "released",
            SyncOp::BarrierArrive => "barrier-arrive",
            SyncOp::BarrierDepart => "barrier-depart",
        }
    }
}

/// One instruction. All instructions execute in one cycle unless they touch
/// shared memory or explicitly consume time (`Delay*`, `Spin*`, `Fence`,
/// magic synchronization).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// `rd ← imm`.
    Imm(Reg, u32),
    /// `rd ← rs`.
    Mov(Reg, Reg),
    /// `rd ← ra ⊕ rb`.
    Alu(AluOp, Reg, Reg, Reg),
    /// `rd ← ra ⊕ imm`.
    AluI(AluOp, Reg, Reg, u32),
    /// Shared load: `rd ← mem[ra + off]` (byte offset, word aligned).
    Load(Reg, Reg, u32),
    /// Shared store: `mem[ra + off] ← rs` (through the write buffer).
    Store(Reg, u32, Reg),
    /// Private load: `rd ← priv[ra + off]` (word-indexed, 1 cycle).
    LoadPriv(Reg, Reg, u32),
    /// Private store: `priv[ra + off] ← rs` (word-indexed, 1 cycle).
    StorePriv(Reg, u32, Reg),
    /// `rd ← fetch_and_add(mem[ra], rb)` — returns the old value.
    FetchAdd(Reg, Reg, Reg),
    /// `rd ← fetch_and_store(mem[ra], rb)` — returns the old value.
    FetchStore(Reg, Reg, Reg),
    /// `rd ← compare_and_swap(mem[ra], expected = rb, new = rc)` — returns
    /// the old value; the swap happened iff `rd == rb`.
    Cas(Reg, Reg, Reg, Reg),
    /// User-level block flush of the block containing `mem[ra]`.
    Flush(Reg),
    /// Release fence: stalls until the write buffer drains and all
    /// outstanding invalidation/update acks arrive.
    Fence,
    /// Spin while `mem[ra] == rb` (the pseudo-code's `repeat while`).
    SpinWhileEq(Reg, Reg),
    /// Spin while `mem[ra] != rb` (the pseudo-code's `repeat until`).
    SpinWhileNe(Reg, Reg),
    /// Consume `imm` cycles of local work.
    Delay(u32),
    /// Consume `reg` cycles of local work.
    DelayReg(Reg),
    /// Consume a uniformly distributed `[0, imm)` cycles of local work from
    /// the per-processor deterministic PRNG stream.
    RandDelay(u32),
    /// Unconditional jump to instruction index.
    Jmp(usize),
    /// Branch to index if `rs == 0`.
    Bez(Reg, usize),
    /// Branch to index if `rs != 0`.
    Bnz(Reg, usize),
    /// Zero-traffic machine-wide barrier (the reduction study's
    /// "synchronize without generating any communication traffic").
    MagicBarrier,
    /// Zero-traffic FIFO lock acquire (lock id `imm`).
    MagicAcquire(u32),
    /// Zero-traffic lock release (lock id `imm`).
    MagicRelease(u32),
    /// Observability marker: the processor enters program phase `imm`.
    /// Costs zero cycles, retires no instruction, and generates no traffic —
    /// annotated and unannotated programs behave identically.
    Phase(u16),
    /// Observability marker: synchronization-episode event `op` on sync
    /// object `imm` (lock or barrier id). Zero-cost like [`Instr::Phase`].
    Sync(SyncOp, u32),
    /// Stop this processor.
    Halt,
}

/// An executable program: straight-line instruction array; branches hold
/// resolved indices (see [`crate::ProgramBuilder`]).
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The instructions.
    pub code: Vec<Instr>,
}

impl Program {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Validates that all branch targets and register indices are in range.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.code.len();
        let ck_target = |i: usize, t: usize| {
            if t >= n {
                Err(format!("instruction {i}: branch target {t} out of range ({n} instrs)"))
            } else {
                Ok(())
            }
        };
        let ck_reg = |i: usize, r: Reg| {
            if r >= NUM_REGS {
                Err(format!("instruction {i}: register r{r} out of range"))
            } else {
                Ok(())
            }
        };
        for (i, ins) in self.code.iter().enumerate() {
            match *ins {
                Instr::Jmp(t) => ck_target(i, t)?,
                Instr::Bez(r, t) | Instr::Bnz(r, t) => {
                    ck_reg(i, r)?;
                    ck_target(i, t)?;
                }
                Instr::Imm(r, _) | Instr::Flush(r) | Instr::DelayReg(r) => ck_reg(i, r)?,
                Instr::Mov(a, b)
                | Instr::SpinWhileEq(a, b)
                | Instr::SpinWhileNe(a, b)
                | Instr::Load(a, b, _)
                | Instr::Store(a, _, b)
                | Instr::LoadPriv(a, b, _)
                | Instr::StorePriv(a, _, b)
                | Instr::AluI(_, a, b, _) => {
                    ck_reg(i, a)?;
                    ck_reg(i, b)?;
                }
                Instr::Alu(_, a, b, c) | Instr::FetchAdd(a, b, c) | Instr::FetchStore(a, b, c) => {
                    ck_reg(i, a)?;
                    ck_reg(i, b)?;
                    ck_reg(i, c)?;
                }
                Instr::Cas(a, b, c, d) => {
                    ck_reg(i, a)?;
                    ck_reg(i, b)?;
                    ck_reg(i, c)?;
                    ck_reg(i, d)?;
                }
                Instr::Delay(_)
                | Instr::RandDelay(_)
                | Instr::Fence
                | Instr::MagicBarrier
                | Instr::MagicAcquire(_)
                | Instr::MagicRelease(_)
                | Instr::Phase(_)
                | Instr::Sync(..)
                | Instr::Halt => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(3, 4), 7);
        assert_eq!(AluOp::Add.apply(u32::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(0, 1), u32::MAX);
        assert_eq!(AluOp::Mul.apply(5, 6), 30);
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Shl.apply(1, 4), 16);
        assert_eq!(AluOp::Shr.apply(16, 4), 1);
        assert_eq!(AluOp::Lt.apply(1, 2), 1);
        assert_eq!(AluOp::Lt.apply(2, 1), 0);
        assert_eq!(AluOp::Eq.apply(7, 7), 1);
        assert_eq!(AluOp::Ne.apply(7, 7), 0);
        assert_eq!(AluOp::Mod.apply(10, 3), 1);
    }

    #[test]
    fn validate_catches_bad_target() {
        let p = Program { code: vec![Instr::Jmp(5)] };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_register() {
        let p = Program { code: vec![Instr::Imm(99, 0)] };
        assert!(p.validate().is_err());
        let p = Program { code: vec![Instr::Cas(0, 1, 2, NUM_REGS)] };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_accepts_good_program() {
        let p = Program {
            code: vec![Instr::Imm(0, 5), Instr::AluI(AluOp::Sub, 0, 0, 1), Instr::Bnz(0, 1), Instr::Halt],
        };
        assert!(p.validate().is_ok());
    }
}

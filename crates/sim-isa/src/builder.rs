//! Assembler-style program construction with symbolic labels.

use std::collections::HashMap;

use crate::instr::{AluOp, Instr, Program, Reg, SyncOp};

/// Builds a [`Program`] with forward-referencing labels.
///
/// ```
/// use sim_isa::{AluOp, ProgramBuilder};
///
/// // r0 = 3; do { r0 -= 1 } while r0 != 0; halt
/// let mut b = ProgramBuilder::new();
/// b.imm(0, 3);
/// b.label("loop");
/// b.alui(AluOp::Sub, 0, 0, 1);
/// b.bnz(0, "loop");
/// b.halt();
/// let prog = b.build();
/// assert_eq!(prog.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    code: Vec<Instr>,
    labels: HashMap<String, usize>,
    /// (instruction index, label) pairs patched at build time.
    fixups: Vec<(usize, String)>,
}

impl ProgramBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Defines `name` at the current position.
    ///
    /// # Panics
    ///
    /// Panics on duplicate definition.
    pub fn label(&mut self, name: &str) -> &mut Self {
        let prev = self.labels.insert(name.to_string(), self.code.len());
        assert!(prev.is_none(), "duplicate label {name:?}");
        self
    }

    fn push_branch(&mut self, instr: Instr, target: &str) -> &mut Self {
        self.fixups.push((self.code.len(), target.to_string()));
        self.code.push(instr);
        self
    }

    /// Emits a raw instruction (no label resolution).
    pub fn raw(&mut self, instr: Instr) -> &mut Self {
        self.code.push(instr);
        self
    }

    /// `rd ← imm`.
    pub fn imm(&mut self, rd: Reg, v: u32) -> &mut Self {
        self.raw(Instr::Imm(rd, v))
    }

    /// `rd ← rs`.
    pub fn mov(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.raw(Instr::Mov(rd, rs))
    }

    /// `rd ← ra ⊕ rb`.
    pub fn alu(&mut self, op: AluOp, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.raw(Instr::Alu(op, rd, ra, rb))
    }

    /// `rd ← ra ⊕ imm`.
    pub fn alui(&mut self, op: AluOp, rd: Reg, ra: Reg, imm: u32) -> &mut Self {
        self.raw(Instr::AluI(op, rd, ra, imm))
    }

    /// Shared load `rd ← mem[ra + off]`.
    pub fn load(&mut self, rd: Reg, ra: Reg, off: u32) -> &mut Self {
        self.raw(Instr::Load(rd, ra, off))
    }

    /// Shared store `mem[ra + off] ← rs`.
    pub fn store(&mut self, ra: Reg, off: u32, rs: Reg) -> &mut Self {
        self.raw(Instr::Store(ra, off, rs))
    }

    /// Private load (word-indexed).
    pub fn load_priv(&mut self, rd: Reg, ra: Reg, off: u32) -> &mut Self {
        self.raw(Instr::LoadPriv(rd, ra, off))
    }

    /// Private store (word-indexed).
    pub fn store_priv(&mut self, ra: Reg, off: u32, rs: Reg) -> &mut Self {
        self.raw(Instr::StorePriv(ra, off, rs))
    }

    /// `rd ← fetch_and_add(mem[ra], rb)`.
    pub fn fetch_add(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.raw(Instr::FetchAdd(rd, ra, rb))
    }

    /// `rd ← fetch_and_store(mem[ra], rb)`.
    pub fn fetch_store(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.raw(Instr::FetchStore(rd, ra, rb))
    }

    /// `rd ← compare_and_swap(mem[ra], rb, rc)`.
    pub fn cas(&mut self, rd: Reg, ra: Reg, rb: Reg, rc: Reg) -> &mut Self {
        self.raw(Instr::Cas(rd, ra, rb, rc))
    }

    /// Block flush of `mem[ra]`'s block.
    pub fn flush(&mut self, ra: Reg) -> &mut Self {
        self.raw(Instr::Flush(ra))
    }

    /// Release fence.
    pub fn fence(&mut self) -> &mut Self {
        self.raw(Instr::Fence)
    }

    /// Spin while `mem[ra] == rb`.
    pub fn spin_while_eq(&mut self, ra: Reg, rb: Reg) -> &mut Self {
        self.raw(Instr::SpinWhileEq(ra, rb))
    }

    /// Spin while `mem[ra] != rb`.
    pub fn spin_while_ne(&mut self, ra: Reg, rb: Reg) -> &mut Self {
        self.raw(Instr::SpinWhileNe(ra, rb))
    }

    /// Consume `cycles` of local work.
    pub fn delay(&mut self, cycles: u32) -> &mut Self {
        self.raw(Instr::Delay(cycles))
    }

    /// Consume `reg` cycles of local work.
    pub fn delay_reg(&mut self, r: Reg) -> &mut Self {
        self.raw(Instr::DelayReg(r))
    }

    /// Consume `[0, bound)` random cycles.
    pub fn rand_delay(&mut self, bound: u32) -> &mut Self {
        self.raw(Instr::RandDelay(bound))
    }

    /// Unconditional jump to `target`.
    pub fn jmp(&mut self, target: &str) -> &mut Self {
        self.push_branch(Instr::Jmp(usize::MAX), target)
    }

    /// Branch to `target` if `rs == 0`.
    pub fn bez(&mut self, rs: Reg, target: &str) -> &mut Self {
        self.push_branch(Instr::Bez(rs, usize::MAX), target)
    }

    /// Branch to `target` if `rs != 0`.
    pub fn bnz(&mut self, rs: Reg, target: &str) -> &mut Self {
        self.push_branch(Instr::Bnz(rs, usize::MAX), target)
    }

    /// Zero-traffic machine barrier.
    pub fn magic_barrier(&mut self) -> &mut Self {
        self.raw(Instr::MagicBarrier)
    }

    /// Zero-traffic lock acquire.
    pub fn magic_acquire(&mut self, lock: u32) -> &mut Self {
        self.raw(Instr::MagicAcquire(lock))
    }

    /// Zero-traffic lock release.
    pub fn magic_release(&mut self, lock: u32) -> &mut Self {
        self.raw(Instr::MagicRelease(lock))
    }

    /// Zero-cost observability marker: enter program phase `id`.
    pub fn phase(&mut self, id: u16) -> &mut Self {
        self.raw(Instr::Phase(id))
    }

    /// Zero-cost observability marker: sync-episode event `op` on object `id`.
    pub fn sync(&mut self, op: SyncOp, id: u32) -> &mut Self {
        self.raw(Instr::Sync(op, id))
    }

    /// Stop the processor.
    pub fn halt(&mut self) -> &mut Self {
        self.raw(Instr::Halt)
    }

    /// Resolves labels and returns the validated program.
    ///
    /// # Panics
    ///
    /// Panics on undefined labels or invalid register/target indices.
    pub fn build(mut self) -> Program {
        for (idx, name) in std::mem::take(&mut self.fixups) {
            let &target = self.labels.get(&name).unwrap_or_else(|| panic!("undefined label {name:?}"));
            match &mut self.code[idx] {
                Instr::Jmp(t) | Instr::Bez(_, t) | Instr::Bnz(_, t) => *t = target,
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
        let prog = Program { code: self.code };
        if let Err(e) = prog.validate() {
            panic!("invalid program: {e}");
        }
        prog
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels() {
        let mut b = ProgramBuilder::new();
        b.imm(0, 2);
        b.label("top");
        b.bez(0, "done"); // forward reference
        b.alui(AluOp::Sub, 0, 0, 1);
        b.jmp("top"); // backward reference
        b.label("done");
        b.halt();
        let p = b.build();
        assert_eq!(p.code[1], Instr::Bez(0, 4));
        assert_eq!(p.code[3], Instr::Jmp(1));
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn undefined_label_panics() {
        let mut b = ProgramBuilder::new();
        b.jmp("nowhere");
        b.build();
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut b = ProgramBuilder::new();
        b.label("x");
        b.label("x");
    }

    #[test]
    fn label_at_end_is_valid_only_if_instruction_follows() {
        let mut b = ProgramBuilder::new();
        b.label("start");
        b.jmp("start");
        assert_eq!(b.build().code[0], Instr::Jmp(0));
    }

    #[test]
    fn fluent_chaining() {
        let mut b = ProgramBuilder::new();
        b.imm(1, 10).imm(2, 20).alu(AluOp::Add, 3, 1, 2).halt();
        let p = b.build();
        assert_eq!(p.len(), 4);
    }
}

//! Timing-free reference executor.
//!
//! Runs a set of per-processor programs under sequential consistency with a
//! deterministic (seeded, uniformly random) interleaving and a flat shared
//! memory. No caches, no protocol, no timing: this is the functional
//! semantics oracle. Integration tests run kernels here and on the full
//! simulator and compare final shared-memory contents.

use std::collections::HashMap;

use sim_engine::SplitMix64;

use crate::instr::{Instr, Program, NUM_REGS};

/// Outcome of a reference run.
#[derive(Debug)]
pub struct RefResult {
    /// Final shared memory (word address → value, zero if absent).
    pub memory: HashMap<u32, u32>,
    /// Final register files.
    pub regs: Vec<[u32; NUM_REGS]>,
    /// Whether every thread reached `Halt`.
    pub all_halted: bool,
    /// Interpreted instructions (spin re-checks included).
    pub steps: u64,
}

impl RefResult {
    /// Final value of a shared word (0 if never written).
    pub fn word(&self, addr: u32) -> u32 {
        *self.memory.get(&addr).unwrap_or(&0)
    }
}

struct Thread {
    prog: Program,
    pc: usize,
    regs: [u32; NUM_REGS],
    private: HashMap<u32, u32>,
    halted: bool,
    blocked_in_barrier: bool,
    waiting_lock: Option<u32>,
}

/// The reference machine.
pub struct RefMachine {
    threads: Vec<Thread>,
    memory: HashMap<u32, u32>,
    rng: SplitMix64,
    barrier_count: usize,
    /// lock id → holder thread (None = free).
    locks: HashMap<u32, Option<usize>>,
}

impl RefMachine {
    /// Creates a machine with one thread per program. `seed` drives the
    /// interleaving (and nothing else; `RandDelay` is a no-op here).
    pub fn new(programs: Vec<Program>, seed: u64) -> Self {
        RefMachine {
            threads: programs
                .into_iter()
                .map(|prog| Thread {
                    prog,
                    pc: 0,
                    regs: [0; NUM_REGS],
                    private: HashMap::new(),
                    halted: false,
                    blocked_in_barrier: false,
                    waiting_lock: None,
                })
                .collect(),
            memory: HashMap::new(),
            rng: SplitMix64::new(seed),
            barrier_count: 0,
            locks: HashMap::new(),
        }
    }

    /// Pre-initializes a shared word (mirrors kernel setup done through the
    /// simulator's memory API).
    pub fn poke(&mut self, addr: u32, val: u32) {
        self.memory.insert(addr, val);
    }

    fn read(&self, addr: u32) -> u32 {
        *self.memory.get(&addr).unwrap_or(&0)
    }

    /// Runs until every thread halts or `max_steps` is exceeded.
    pub fn run(mut self, max_steps: u64) -> RefResult {
        let n = self.threads.len();
        let mut steps = 0;
        while steps < max_steps {
            if self.threads.iter().all(|t| t.halted) {
                break;
            }
            // Pick a random runnable thread.
            let runnable: Vec<usize> = (0..n)
                .filter(|&i| {
                    let t = &self.threads[i];
                    !t.halted && !t.blocked_in_barrier && t.waiting_lock.is_none()
                })
                .collect();
            if runnable.is_empty() {
                // Deadlock (or everyone waiting in a barrier that cannot
                // fill because some threads halted): stop.
                break;
            }
            let tid = runnable[self.rng.next_below(runnable.len() as u64) as usize];
            self.step(tid);
            steps += 1;
        }
        RefResult {
            memory: self.memory,
            regs: self.threads.iter().map(|t| t.regs).collect(),
            all_halted: self.threads.iter().all(|t| t.halted),
            steps,
        }
    }

    fn step(&mut self, tid: usize) {
        let instr = {
            let t = &self.threads[tid];
            t.prog.code.get(t.pc).cloned().unwrap_or(Instr::Halt)
        };
        // Default: advance pc; branches and spins override.
        let mut next_pc = self.threads[tid].pc + 1;
        match instr {
            Instr::Imm(rd, v) => self.threads[tid].regs[rd] = v,
            Instr::Mov(rd, rs) => self.threads[tid].regs[rd] = self.threads[tid].regs[rs],
            Instr::Alu(op, rd, ra, rb) => {
                let t = &mut self.threads[tid];
                t.regs[rd] = op.apply(t.regs[ra], t.regs[rb]);
            }
            Instr::AluI(op, rd, ra, imm) => {
                let t = &mut self.threads[tid];
                t.regs[rd] = op.apply(t.regs[ra], imm);
            }
            Instr::Load(rd, ra, off) => {
                let addr = self.threads[tid].regs[ra].wrapping_add(off);
                self.threads[tid].regs[rd] = self.read(addr);
            }
            Instr::Store(ra, off, rs) => {
                let addr = self.threads[tid].regs[ra].wrapping_add(off);
                let val = self.threads[tid].regs[rs];
                self.memory.insert(addr, val);
            }
            Instr::LoadPriv(rd, ra, off) => {
                let addr = self.threads[tid].regs[ra].wrapping_add(off);
                self.threads[tid].regs[rd] = *self.threads[tid].private.get(&addr).unwrap_or(&0);
            }
            Instr::StorePriv(ra, off, rs) => {
                let addr = self.threads[tid].regs[ra].wrapping_add(off);
                let val = self.threads[tid].regs[rs];
                self.threads[tid].private.insert(addr, val);
            }
            Instr::FetchAdd(rd, ra, rb) => {
                let addr = self.threads[tid].regs[ra];
                let old = self.read(addr);
                let add = self.threads[tid].regs[rb];
                self.memory.insert(addr, old.wrapping_add(add));
                self.threads[tid].regs[rd] = old;
            }
            Instr::FetchStore(rd, ra, rb) => {
                let addr = self.threads[tid].regs[ra];
                let old = self.read(addr);
                let new = self.threads[tid].regs[rb];
                self.memory.insert(addr, new);
                self.threads[tid].regs[rd] = old;
            }
            Instr::Cas(rd, ra, rb, rc) => {
                let addr = self.threads[tid].regs[ra];
                let old = self.read(addr);
                let expected = self.threads[tid].regs[rb];
                if old == expected {
                    let new = self.threads[tid].regs[rc];
                    self.memory.insert(addr, new);
                }
                self.threads[tid].regs[rd] = old;
            }
            Instr::Flush(_) | Instr::Fence | Instr::Delay(_) | Instr::DelayReg(_) | Instr::RandDelay(_) => {}
            Instr::SpinWhileEq(ra, rb) => {
                let t = &self.threads[tid];
                if self.read(t.regs[ra]) == t.regs[rb] {
                    next_pc = t.pc; // keep spinning
                }
            }
            Instr::SpinWhileNe(ra, rb) => {
                let t = &self.threads[tid];
                if self.read(t.regs[ra]) != t.regs[rb] {
                    next_pc = t.pc;
                }
            }
            Instr::Jmp(t) => next_pc = t,
            Instr::Bez(rs, t) => {
                if self.threads[tid].regs[rs] == 0 {
                    next_pc = t;
                }
            }
            Instr::Bnz(rs, t) => {
                if self.threads[tid].regs[rs] != 0 {
                    next_pc = t;
                }
            }
            Instr::MagicBarrier => {
                self.threads[tid].blocked_in_barrier = true;
                self.barrier_count += 1;
                let alive = self.threads.iter().filter(|t| !t.halted).count();
                if self.barrier_count == alive {
                    self.barrier_count = 0;
                    for t in &mut self.threads {
                        t.blocked_in_barrier = false;
                    }
                } else {
                    // Stay on this instruction until released; pc advances
                    // for everyone when the barrier opens, so record ours.
                }
                // pc advances now; blocked threads simply are not scheduled
                // until the barrier opens.
            }
            Instr::MagicAcquire(l) => {
                let slot = self.locks.entry(l).or_insert(None);
                match slot {
                    None => *slot = Some(tid),
                    Some(_) => {
                        // Retry this instruction when the lock frees.
                        self.threads[tid].waiting_lock = Some(l);
                        next_pc = self.threads[tid].pc;
                    }
                }
            }
            Instr::MagicRelease(l) => {
                let slot = self.locks.entry(l).or_insert(None);
                assert_eq!(*slot, Some(tid), "release of a lock not held");
                *slot = None;
                // Wake one waiter (lowest id for determinism).
                if let Some(w) = (0..self.threads.len()).find(|&i| self.threads[i].waiting_lock == Some(l)) {
                    self.threads[w].waiting_lock = None;
                }
            }
            Instr::Phase(_) | Instr::Sync(..) => {} // observability markers: no semantic effect
            Instr::Halt => {
                self.threads[tid].halted = true;
                next_pc = self.threads[tid].pc;
                // A halting thread can complete a pending barrier.
                let alive = self.threads.iter().filter(|t| !t.halted).count();
                if alive > 0 && self.barrier_count == alive {
                    self.barrier_count = 0;
                    for t in &mut self.threads {
                        t.blocked_in_barrier = false;
                    }
                }
            }
        }
        self.threads[tid].pc = next_pc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::AluOp;

    #[test]
    fn single_thread_arithmetic() {
        let mut b = ProgramBuilder::new();
        b.imm(0, 6).imm(1, 7).alu(AluOp::Mul, 2, 0, 1);
        b.imm(3, 0x100).store(3, 0, 2).halt();
        let r = RefMachine::new(vec![b.build()], 1).run(1000);
        assert!(r.all_halted);
        assert_eq!(r.word(0x100), 42);
    }

    #[test]
    fn fetch_add_is_atomic_across_threads() {
        // 4 threads each fetch_add 100 times; final counter is 400 and
        // every thread saw distinct tickets.
        let progs: Vec<_> = (0..4)
            .map(|_| {
                let mut b = ProgramBuilder::new();
                b.imm(0, 0x200); // counter address
                b.imm(1, 1); // addend
                b.imm(2, 100); // iterations
                b.label("loop");
                b.fetch_add(3, 0, 1);
                b.alui(AluOp::Sub, 2, 2, 1);
                b.bnz(2, "loop");
                b.halt();
                b.build()
            })
            .collect();
        let r = RefMachine::new(progs, 42).run(1_000_000);
        assert!(r.all_halted);
        assert_eq!(r.word(0x200), 400);
    }

    #[test]
    fn cas_swaps_only_on_match() {
        let mut b = ProgramBuilder::new();
        b.imm(0, 0x80).imm(1, 0).imm(2, 5);
        b.cas(3, 0, 1, 2); // mem[0x80]: 0 -> 5, old = 0
        b.cas(4, 0, 1, 2); // fails: old = 5
        b.halt();
        let r = RefMachine::new(vec![b.build()], 0).run(100);
        assert_eq!(r.word(0x80), 5);
        assert_eq!(r.regs[0][3], 0);
        assert_eq!(r.regs[0][4], 5);
    }

    #[test]
    fn spin_released_by_other_thread() {
        // Thread 0 spins until mem[0x40] == 1; thread 1 sets it.
        let mut b0 = ProgramBuilder::new();
        b0.imm(0, 0x40).imm(1, 1);
        b0.spin_while_ne(0, 1);
        b0.imm(2, 0x44).imm(3, 9).store(2, 0, 3);
        b0.halt();
        let mut b1 = ProgramBuilder::new();
        b1.delay(1);
        b1.imm(0, 0x40).imm(1, 1).store(0, 0, 1);
        b1.halt();
        let r = RefMachine::new(vec![b0.build(), b1.build()], 7).run(100_000);
        assert!(r.all_halted);
        assert_eq!(r.word(0x44), 9);
    }

    #[test]
    fn magic_lock_mutual_exclusion() {
        // Each thread does non-atomic read-modify-write under the lock;
        // mutual exclusion makes the final count exact.
        let progs: Vec<_> = (0..4)
            .map(|_| {
                let mut b = ProgramBuilder::new();
                b.imm(0, 0x300).imm(2, 50);
                b.label("loop");
                b.magic_acquire(0);
                b.load(1, 0, 0);
                b.alui(AluOp::Add, 1, 1, 1);
                b.store(0, 0, 1);
                b.magic_release(0);
                b.alui(AluOp::Sub, 2, 2, 1);
                b.bnz(2, "loop");
                b.halt();
                b.build()
            })
            .collect();
        let r = RefMachine::new(progs, 3).run(1_000_000);
        assert!(r.all_halted);
        assert_eq!(r.word(0x300), 200);
    }

    #[test]
    fn magic_barrier_rendezvous() {
        // Thread 0 writes before the barrier; thread 1 reads after it.
        let mut b0 = ProgramBuilder::new();
        b0.imm(0, 0x10).imm(1, 77).store(0, 0, 1);
        b0.magic_barrier();
        b0.halt();
        let mut b1 = ProgramBuilder::new();
        b1.magic_barrier();
        b1.imm(0, 0x10).load(2, 0, 0);
        b1.imm(3, 0x14).store(3, 0, 2);
        b1.halt();
        let r = RefMachine::new(vec![b0.build(), b1.build()], 9).run(100_000);
        assert!(r.all_halted);
        assert_eq!(r.word(0x14), 77);
    }

    #[test]
    fn deadlock_detected_by_stall() {
        // A thread spinning on a flag nobody sets: run() returns without
        // all_halted.
        let mut b = ProgramBuilder::new();
        b.imm(0, 0x40).imm(1, 1);
        b.spin_while_ne(0, 1);
        b.halt();
        let r = RefMachine::new(vec![b.build()], 0).run(10_000);
        assert!(!r.all_halted);
    }
}

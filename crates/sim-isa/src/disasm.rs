//! Disassembly and static program statistics.

use std::fmt;

use crate::instr::{AluOp, Instr, Program};

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Lt => "lt",
            AluOp::Eq => "eq",
            AluOp::Ne => "ne",
            AluOp::Mod => "mod",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Imm(rd, v) => write!(f, "imm   r{rd}, {v:#x}"),
            Instr::Mov(rd, rs) => write!(f, "mov   r{rd}, r{rs}"),
            Instr::Alu(op, rd, ra, rb) => write!(f, "{op:<5} r{rd}, r{ra}, r{rb}"),
            Instr::AluI(op, rd, ra, imm) => write!(f, "{op:<5} r{rd}, r{ra}, {imm:#x}"),
            Instr::Load(rd, ra, off) => write!(f, "load  r{rd}, [r{ra}+{off:#x}]"),
            Instr::Store(ra, off, rs) => write!(f, "store [r{ra}+{off:#x}], r{rs}"),
            Instr::LoadPriv(rd, ra, off) => write!(f, "loadp r{rd}, p[r{ra}+{off:#x}]"),
            Instr::StorePriv(ra, off, rs) => write!(f, "storep p[r{ra}+{off:#x}], r{rs}"),
            Instr::FetchAdd(rd, ra, rb) => write!(f, "fetch_add r{rd}, [r{ra}], r{rb}"),
            Instr::FetchStore(rd, ra, rb) => write!(f, "fetch_store r{rd}, [r{ra}], r{rb}"),
            Instr::Cas(rd, ra, rb, rc) => write!(f, "cas   r{rd}, [r{ra}], r{rb}, r{rc}"),
            Instr::Flush(ra) => write!(f, "flush [r{ra}]"),
            Instr::Fence => write!(f, "fence"),
            Instr::SpinWhileEq(ra, rb) => write!(f, "spin_while_eq [r{ra}], r{rb}"),
            Instr::SpinWhileNe(ra, rb) => write!(f, "spin_while_ne [r{ra}], r{rb}"),
            Instr::Delay(c) => write!(f, "delay {c}"),
            Instr::DelayReg(r) => write!(f, "delay r{r}"),
            Instr::RandDelay(b) => write!(f, "rand_delay {b}"),
            Instr::Jmp(t) => write!(f, "jmp   {t}"),
            Instr::Bez(rs, t) => write!(f, "bez   r{rs}, {t}"),
            Instr::Bnz(rs, t) => write!(f, "bnz   r{rs}, {t}"),
            Instr::MagicBarrier => write!(f, "magic_barrier"),
            Instr::MagicAcquire(l) => write!(f, "magic_acquire {l}"),
            Instr::MagicRelease(l) => write!(f, "magic_release {l}"),
            Instr::Phase(p) => write!(f, "phase {p}"),
            Instr::Sync(op, id) => write!(f, "sync  {} {id}", op.name()),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

/// Static instruction-mix statistics for a [`Program`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgramStats {
    /// Total instructions.
    pub total: usize,
    /// Shared loads (`Load`).
    pub loads: usize,
    /// Shared stores (`Store`).
    pub stores: usize,
    /// Atomic operations.
    pub atomics: usize,
    /// Busy-wait spin instructions.
    pub spins: usize,
    /// Fences.
    pub fences: usize,
    /// Block flushes.
    pub flushes: usize,
    /// Branches and jumps.
    pub branches: usize,
    /// Magic (zero-traffic) synchronization instructions.
    pub magic: usize,
}

impl Program {
    /// Renders the whole program, one numbered instruction per line.
    pub fn disassemble(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        for (i, ins) in self.code.iter().enumerate() {
            let _ = writeln!(out, "{i:>4}: {ins}");
        }
        out
    }

    /// Counts the static instruction mix.
    pub fn stats(&self) -> ProgramStats {
        let mut s = ProgramStats { total: self.code.len(), ..Default::default() };
        for ins in &self.code {
            match ins {
                Instr::Load(..) => s.loads += 1,
                Instr::Store(..) => s.stores += 1,
                Instr::FetchAdd(..) | Instr::FetchStore(..) | Instr::Cas(..) => s.atomics += 1,
                Instr::SpinWhileEq(..) | Instr::SpinWhileNe(..) => s.spins += 1,
                Instr::Fence => s.fences += 1,
                Instr::Flush(..) => s.flushes += 1,
                Instr::Jmp(..) | Instr::Bez(..) | Instr::Bnz(..) => s.branches += 1,
                Instr::MagicBarrier | Instr::MagicAcquire(..) | Instr::MagicRelease(..) => s.magic += 1,
                _ => {}
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn sample() -> Program {
        let mut b = ProgramBuilder::new();
        b.imm(0, 0x40).imm(1, 1).imm(15, 3);
        b.label("loop");
        b.fetch_add(2, 0, 1);
        b.spin_while_ne(0, 2);
        b.store(0, 4, 2);
        b.fence();
        b.flush(0);
        b.alui(AluOp::Sub, 15, 15, 1);
        b.bnz(15, "loop");
        b.magic_barrier();
        b.halt();
        b.build()
    }

    #[test]
    fn disassembly_is_one_line_per_instruction() {
        let p = sample();
        let d = p.disassemble();
        assert_eq!(d.lines().count(), p.len());
        assert!(d.contains("fetch_add"));
        assert!(d.contains("spin_while_ne"));
        assert!(d.contains("halt"));
    }

    #[test]
    fn stats_count_the_mix() {
        let s = sample().stats();
        assert_eq!(s.total, 12);
        assert_eq!(s.loads, 0);
        assert_eq!(s.stores, 1);
        assert_eq!(s.atomics, 1);
        assert_eq!(s.spins, 1);
        assert_eq!(s.fences, 1);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.branches, 1);
        assert_eq!(s.magic, 1);
    }

    #[test]
    fn alu_ops_render() {
        assert_eq!(AluOp::Add.to_string(), "add");
        assert_eq!(AluOp::Mod.to_string(), "mod");
    }
}

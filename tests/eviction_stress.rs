//! Eviction stress: the paper's kernels never overflow the 64 KB cache
//! (they see no eviction misses and no replacement updates — footnote 1),
//! so these tests shrink the cache until conflict evictions, writeback
//! races, and fetch-miss retries fire constantly, and check that the
//! protocols stay correct and the classifier reports the new categories.

use kernels::workloads::{BarrierKind, BarrierWorkload, LockKind, LockWorkload, PostRelease};
use kernels::{barriers, locks};
use sim_isa::{AluOp, ProgramBuilder};
use sim_machine::{Machine, MachineConfig};
use sim_mem::CacheConfig;
use sim_proto::Protocol;

const PROTOCOLS: [Protocol; 3] =
    [Protocol::WriteInvalidate, Protocol::PureUpdate, Protocol::CompetitiveUpdate];

/// A machine whose caches hold only `lines` blocks.
fn tiny_cache_machine(procs: usize, protocol: Protocol, lines: u32) -> Machine {
    let mut cfg = MachineConfig::paper(procs, protocol);
    cfg.cache = CacheConfig { capacity_bytes: 64 * lines, block_bytes: 64 };
    Machine::new(cfg)
}

/// Each CPU sweeps a working set much larger than the cache, reading and
/// writing every slot, then publishes a checksum.
fn sweep_program(slots: &[u32], rounds: u32, out: u32) -> sim_isa::Program {
    let mut b = ProgramBuilder::new();
    b.imm(15, rounds);
    b.imm(5, 0); // checksum
    b.label("round");
    for &s in slots {
        b.imm(0, s);
        b.load(1, 0, 0);
        b.alu(AluOp::Add, 5, 5, 1);
        b.alui(AluOp::Add, 1, 1, 1);
        b.store(0, 0, 1);
    }
    b.fence();
    b.alui(AluOp::Sub, 15, 15, 1);
    b.bnz(15, "round");
    b.imm(0, out);
    b.store(0, 0, 5);
    b.fence();
    b.halt();
    b.build()
}

#[test]
fn private_sweeps_evict_and_stay_correct() {
    // Each CPU owns its slots: no sharing, but constant conflict misses.
    for protocol in PROTOCOLS {
        let mut m = tiny_cache_machine(2, protocol, 4);
        let rounds = 5u32;
        let mut outs = Vec::new();
        let mut all_slots = Vec::new();
        for cpu in 0..2 {
            // 12 slots > 4 lines: guaranteed conflicts.
            let slots: Vec<u32> = (0..12).map(|_| m.alloc().alloc_block_on(cpu, 1)).collect();
            let out = m.alloc().alloc_block_on(cpu, 1);
            m.set_program(cpu, sweep_program(&slots, rounds, out));
            outs.push(out);
            all_slots.push(slots);
        }
        let r = m.run();
        m.assert_coherent();
        assert!(r.traffic.misses.eviction > 0, "{protocol:?}: evictions observed");
        // Every slot was incremented `rounds` times; the checksum is the
        // sum of the values read (0 + 1 + ... + rounds-1 per slot).
        let expected_sum: u32 = (0..rounds).sum::<u32>() * 12;
        for (cpu, &out) in outs.iter().enumerate() {
            assert_eq!(m.read_word(out), expected_sum, "{protocol:?} cpu {cpu} checksum");
            for &s in &all_slots[cpu] {
                assert_eq!(m.read_word(s), rounds, "{protocol:?} slot {s:#x}");
            }
        }
    }
}

#[test]
fn shared_sweeps_race_evictions_against_coherence() {
    // Both CPUs hammer the same oversized working set with atomics, so
    // recalls (Fetch/FetchInv/RecallUpd) constantly race writebacks.
    for protocol in PROTOCOLS {
        let mut m = tiny_cache_machine(2, protocol, 2);
        let slots: Vec<u32> = (0..8).map(|i| m.alloc().alloc_block_on(i % 2, 1)).collect();
        for cpu in 0..2 {
            let mut b = ProgramBuilder::new();
            b.imm(15, 6);
            b.imm(2, 1);
            b.label("round");
            for &s in &slots {
                b.imm(0, s);
                b.fetch_add(1, 0, 2);
            }
            b.alui(AluOp::Sub, 15, 15, 1);
            b.bnz(15, "round");
            b.halt();
            m.set_program(cpu, b.build());
        }
        let r = m.run();
        m.assert_coherent();
        assert!(r.cycles > 0);
        for &s in &slots {
            assert_eq!(m.read_word(s), 12, "{protocol:?}: 2 CPUs x 6 rounds");
        }
    }
}

#[test]
fn lock_kernel_survives_tiny_cache() {
    // The paper's own lock kernel under a 4-line cache: queue nodes and
    // counters now evict mid-transaction.
    for protocol in PROTOCOLS {
        for kind in [LockKind::Ticket, LockKind::Mcs] {
            let w = LockWorkload { kind, total_acquires: 96, cs_cycles: 10, post_release: PostRelease::None };
            let mut m = tiny_cache_machine(4, protocol, 4);
            let layout = locks::install(&mut m, &w);
            m.run();
            locks::verify(&mut m, &w, &layout);
            m.assert_coherent();
        }
    }
}

#[test]
fn barrier_kernel_survives_tiny_cache() {
    for protocol in PROTOCOLS {
        for kind in [BarrierKind::Centralized, BarrierKind::Dissemination, BarrierKind::Tree] {
            let w = BarrierWorkload { kind, episodes: 15 };
            let mut m = tiny_cache_machine(5, protocol, 2);
            let layout = barriers::install(&mut m, &w);
            m.run();
            barriers::verify(&mut m, &w, &layout);
            m.assert_coherent();
        }
    }
}

#[test]
fn replacement_updates_appear_under_tiny_caches() {
    // A sharer that keeps evicting a block it receives updates for should
    // eventually register replacement updates... unless the eviction
    // notifies the home first (our caches send replacement hints, so the
    // common case is the record dying as a replacement update exactly
    // when an update is in flight). Construct it directly: CPU 1 caches a
    // hot word, CPU 0 updates it while CPU 1 thrashes its cache.
    let mut m = tiny_cache_machine(2, Protocol::PureUpdate, 2);
    let hot = m.alloc().alloc_block_on(0, 1);
    let thrash: Vec<u32> = (0..6).map(|_| m.alloc().alloc_block_on(1, 1)).collect();

    // CPU 0: write the hot word repeatedly.
    let mut b0 = ProgramBuilder::new();
    b0.imm(0, hot).imm(15, 40).imm(2, 0);
    b0.label("loop");
    b0.alui(AluOp::Add, 2, 2, 1);
    b0.store(0, 0, 2);
    b0.fence();
    b0.delay(30);
    b0.alui(AluOp::Sub, 15, 15, 1);
    b0.bnz(15, "loop");
    b0.halt();
    m.set_program(0, b0.build());

    // CPU 1: read the hot word once (becoming a sharer), then thrash.
    let mut b1 = ProgramBuilder::new();
    b1.imm(0, hot).load(1, 0, 0);
    b1.imm(15, 30);
    b1.label("loop");
    for &t in &thrash {
        b1.imm(0, t);
        b1.load(1, 0, 0);
    }
    // Re-read the hot word so CPU 1 re-joins the sharer set.
    b1.imm(0, hot);
    b1.load(1, 0, 0);
    b1.alui(AluOp::Sub, 15, 15, 1);
    b1.bnz(15, "loop");
    b1.halt();
    m.set_program(1, b1.build());

    let r = m.run();
    m.assert_coherent();
    // The hot block gets evicted by the thrash set whenever it maps onto
    // the same line; updates in flight at those moments classify as
    // replacement updates.
    assert!(
        r.traffic.updates.replacement > 0 || r.traffic.misses.eviction > 0,
        "thrashing must produce replacement-class traffic: {:?} / {:?}",
        r.traffic.updates,
        r.traffic.misses
    );
}

//! Unified benchmark-registry contracts.
//!
//! * Every committed repo-root `BENCH_*.json` parses strictly through the
//!   [`BenchRecord`] envelope — unknown or missing fields reject, so the
//!   four legacy schemas really are migrated, and stay migrated.
//! * The CI gate fails on an injected cycle-count regression: exact
//!   metrics tolerate zero drift, wall metrics get the tolerance band.
//! * Profiler `--json` documents are canonical: two runs of the same
//!   spec emit byte-identical output with recursively sorted keys.

use std::path::{Path, PathBuf};

use kernels::runner::KernelSpec;
use kernels::workloads::{LockKind, LockWorkload};
use ppc_bench::diff::{gate_record, gate_spec_digest};
use ppc_bench::observed::observed_json;
use ppc_bench::registry::{gate_check, gate_passes, BenchRecord, BENCH_SCHEMA};
use sim_stats::Json;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root resolves")
}

/// A small fixed workload, built directly so the tests run fast no matter
/// what `PPC_SCALE` is set to.
fn small_lock(kind: LockKind) -> KernelSpec {
    KernelSpec::Lock(LockWorkload { total_acquires: 160, ..LockWorkload::paper(kind) })
}

#[test]
fn every_committed_bench_file_is_on_the_unified_schema() {
    let root = repo_root();
    let mut found = Vec::new();
    for entry in std::fs::read_dir(&root).expect("repo root lists") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("").to_string();
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let record = BenchRecord::from_file(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(record.schema, BENCH_SCHEMA, "{name}");
        assert!(!record.bench.is_empty() && !record.title.is_empty(), "{name}: empty envelope fields");
        assert!(!record.spec_digest.is_empty(), "{name}: empty spec digest");
        found.push(record.bench);
    }
    found.sort();
    // The four migrated legacy benches plus the CI gate baseline.
    for expected in ["gate", "harness", "obs", "pdes", "sweep"] {
        assert!(found.iter().any(|b| b == expected), "no committed BENCH record for {expected:?}: {found:?}");
    }
}

#[test]
fn strict_parsing_rejects_unknown_and_missing_fields() {
    let gate = repo_root().join("BENCH_gate.json");
    let text = std::fs::read_to_string(&gate).expect("committed gate baseline exists");
    let Json::Obj(pairs) = Json::parse(&text).expect("gate baseline parses") else {
        panic!("gate baseline must be an object")
    };
    let mut extra = pairs.clone();
    extra.push(("surprise".to_string(), Json::U64(1)));
    assert!(BenchRecord::from_json(&Json::Obj(extra)).unwrap_err().contains("unknown"));
    let missing: Vec<_> = pairs.iter().filter(|(k, _)| k != "metrics").cloned().collect();
    assert!(BenchRecord::from_json(&Json::Obj(missing)).unwrap_err().contains("missing"));
}

#[test]
fn gate_fails_on_an_injected_cycle_regression() {
    let kernel = small_lock(LockKind::Mcs);
    let baseline = gate_record("mcs-lock", 2, &kernel);
    assert_eq!(baseline.spec_digest, gate_spec_digest("mcs-lock", 2));
    // The same measurement gates green against itself (wall band 100%).
    assert!(gate_passes(&gate_check(&baseline, &baseline, 1.0)));
    // Inject a one-cycle regression into an exact metric: the gate must
    // fail no matter how generous the wall band is.
    let mut regressed = baseline.clone();
    let Json::Obj(metrics) = &mut regressed.metrics else { panic!("metrics is an object") };
    let cycles = metrics.iter_mut().find(|(k, _)| k == "cycles_wi").expect("cycles_wi metric exists");
    let Json::U64(v) = &mut cycles.1 else { panic!("cycles_wi is an integer") };
    *v += 1;
    let checks = gate_check(&baseline, &regressed, 1000.0);
    assert!(!gate_passes(&checks), "a cycle-count regression must fail the gate");
    let failed: Vec<_> = checks.iter().filter(|c| !c.pass).map(|c| c.metric.as_str()).collect();
    assert_eq!(failed, ["cycles_wi"], "only the injected regression fails");
}

/// Asserts every object in the tree has sorted keys.
fn assert_sorted(v: &Json, path: &str) {
    match v {
        Json::Obj(pairs) => {
            for w in pairs.windows(2) {
                assert!(w[0].0 < w[1].0, "{path}: key {:?} out of order (after {:?})", w[1].0, w[0].0);
            }
            for (k, v) in pairs {
                assert_sorted(v, &format!("{path}.{k}"));
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                assert_sorted(item, &format!("{path}[{i}]"));
            }
        }
        _ => {}
    }
}

#[test]
fn profiler_json_documents_are_canonical_and_byte_identical() {
    let kernel = small_lock(LockKind::Ticket);
    // Two independent runs of the same spec: the shared `--json` document
    // (crit_path / line_profile / net_profile) must render byte-identically
    // with recursively sorted keys.
    let first = observed_json("ticket-lock", 2, &kernel).render_pretty();
    let second = observed_json("ticket-lock", 2, &kernel).render_pretty();
    assert_eq!(first, second, "repeated runs must emit byte-identical JSON");
    assert_sorted(&Json::parse(&first).expect("document parses"), "$");
    // The committed bench records hold the same discipline.
    let gate = BenchRecord::from_file(&repo_root().join("BENCH_gate.json")).expect("gate record parses");
    assert_sorted(&Json::parse(&gate.render_file()).expect("round-trips"), "BENCH_gate");
}

//! Enforcement layer for parallelism observability (shared-state touch
//! tracing, epoch conflict analytics, what-if speedup projection).
//!
//! Three promises are on trial:
//!
//! * **Zero perturbation** — a parobs-on run must match the parobs-off
//!   run cycle for cycle, instruction for instruction, traffic event for
//!   traffic event, and (when fingerprints ride along) digest for digest,
//!   on both the serial and the sharded core. The collector is purely
//!   passive.
//! * **Conflict-count closure** — per-structure-kind conflict counts must
//!   sum to an independently tallied total, owner-attributed conflicts
//!   must partition the same total, and both must hold at every what-if
//!   projection point.
//! * **Projection sanity** — every requested shard count appears in both
//!   plan shapes, speedups are positive and finite, and each point names
//!   its limiting structure exactly when it serializes any epoch.
//!
//! Workloads are deliberately small so the whole file runs in a
//! debug-mode tier-1 pass; none of the promises depend on scale.

use kernels::runner::KernelSpec;
use kernels::workloads::{BarrierKind, BarrierWorkload, LockKind, LockWorkload, PostRelease};
use ppc_bench::observed::run_kernel;
use sim_machine::{Machine, MachineConfig};
use sim_proto::Protocol;
use sim_stats::PlanShape;

const PROTOCOLS: [Protocol; 3] =
    [Protocol::WriteInvalidate, Protocol::PureUpdate, Protocol::CompetitiveUpdate];

fn small_lock() -> KernelSpec {
    KernelSpec::Lock(LockWorkload {
        kind: LockKind::Mcs,
        total_acquires: 160,
        cs_cycles: 30,
        post_release: PostRelease::None,
    })
}

fn small_barrier() -> KernelSpec {
    KernelSpec::Barrier(BarrierWorkload { kind: BarrierKind::Centralized, episodes: 24 })
}

fn run(cfg: MachineConfig, kernel: &KernelSpec) -> sim_machine::RunResult {
    run_kernel(&mut Machine::new(cfg), kernel)
}

#[test]
fn parobs_never_perturbs_the_simulation() {
    for kernel in [small_lock(), small_barrier()] {
        for protocol in PROTOCOLS {
            for shards in [1usize, 2] {
                let bare = run(MachineConfig::paper(4, protocol).with_shards(shards), &kernel);
                let with =
                    run(MachineConfig::paper(4, protocol).with_shards(shards).with_parobs(&[2, 4]), &kernel);
                assert!(bare.par.is_none() && with.par.is_some());
                assert_eq!(bare.cycles, with.cycles, "{protocol:?}/{shards}: cycles moved under parobs");
                assert_eq!(bare.instructions, with.instructions, "{protocol:?}/{shards}");
                assert_eq!(
                    format!("{:?}", bare.traffic),
                    format!("{:?}", with.traffic),
                    "{protocol:?}/{shards}: traffic classification moved under parobs"
                );
                assert_eq!(format!("{:?}", bare.net), format!("{:?}", with.net), "{protocol:?}/{shards}");
            }
        }
    }
}

#[test]
fn parobs_preserves_the_fingerprint_chain() {
    // With hostobs riding along, the epoch-digest chain — a digest of
    // every committed event — must be byte-identical parobs-on vs off.
    for shards in [1usize, 2] {
        let base = run(
            MachineConfig::paper_hostobs(4, Protocol::CompetitiveUpdate).with_shards(shards),
            &small_lock(),
        );
        let with = run(
            MachineConfig::paper_hostobs(4, Protocol::CompetitiveUpdate)
                .with_shards(shards)
                .with_parobs(&[2, 4, 8]),
            &small_lock(),
        );
        let a = base.fingerprint.expect("hostobs run carries a fingerprint");
        let b = with.fingerprint.expect("hostobs+parobs run carries a fingerprint");
        assert_eq!(a.first_divergence(&b), None, "shards={shards}: parobs diverged the digest chain");
        assert_eq!(a, b, "shards={shards}: chains compare unequal under parobs");
        // The report also rides on the host profile for downstream diffing.
        assert!(with.host.expect("host profile present").parobs.is_some());
    }
}

#[test]
fn conflict_counts_close_under_every_plan() {
    for kernel in [small_lock(), small_barrier()] {
        for protocol in PROTOCOLS {
            let r = run(MachineConfig::paper(4, protocol).with_shards(2).with_parobs(&[2, 4, 16]), &kernel);
            let par = r.par.expect("parobs report present");
            par.check_closure().unwrap_or_else(|e| panic!("{protocol:?}: {e}"));
            // The structural invariants behind the closure: the per-kind
            // table repeats the actual plan's counts, and every touch
            // record was attributed to exactly one kind.
            let kind_sum: u64 = par.kinds.iter().map(|k| k.conflicts).sum();
            assert_eq!(kind_sum, par.conflicts_total);
            let touch_sum: u64 = par.kinds.iter().map(|k| k.touches).sum();
            assert_eq!(touch_sum, par.touch_records);
        }
    }
}

#[test]
fn projection_covers_both_shapes_and_names_limiters() {
    let r = run(
        MachineConfig::paper(4, Protocol::WriteInvalidate).with_shards(2).with_parobs(&[2, 4]),
        &small_lock(),
    );
    let par = r.par.expect("parobs report present");
    assert_eq!(par.projection.len(), 2 * 2, "every shape x shard count projects");
    for shape in [PlanShape::Contiguous, PlanShape::RoundRobin] {
        let curve = par.curve(shape);
        assert_eq!(curve.iter().map(|p| p.shards).collect::<Vec<_>>(), vec![2, 4]);
        for p in curve {
            assert!(p.speedup.is_finite() && p.speedup > 0.0, "{}", p.sentence());
            assert_eq!(
                p.limiting.is_some(),
                p.serialized_fraction > 0.0,
                "a limiter is named exactly when epochs serialize: {}",
                p.sentence()
            );
            assert!(p.sentence().starts_with(&format!("projection {} x{}", shape.name(), p.shards)));
        }
    }
    // Serial-core fallback: no host profiler, so weights are event counts.
    assert_eq!(par.weights, "events");
}

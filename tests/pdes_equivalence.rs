//! Enforcement layer for the conservative-PDES sharded core.
//!
//! The core's one promise: **sharding is invisible to the simulation**.
//! `MachineConfig::shards` picks how the event queue is laid out across
//! shards and how time advances (lookahead-bounded epochs with handoff
//! drains at barriers), but every run commits the same events in the same
//! global `(cycle, seq)` order the serial core would — to the cycle, to
//! the tie-break. These tests are the enforcement of that promise:
//!
//! * **Fingerprint-chain identity** — the strongest observable form: the
//!   epoch-digest chain hashes every committed event (cycle, kind,
//!   endpoints, address) in commit order, plus a digest of the final
//!   machine state. Serial and sharded runs must produce *equal* chains
//!   for every kernel family under every protocol.
//! * **Figure-path identity** — the full `ExperimentOutcome` (the struct
//!   every figure table renders from) must be identical field-for-field,
//!   so the rendered figure bytes cannot depend on the shard count.
//! * **Cache-key separation** — a sharded cell may never be served a
//!   serial cell's memoized result (or vice versa): a core bug must show
//!   up, not be masked by the cache.
//!
//! Workload sizes are unique to this file so its memo keys never collide
//! with other test binaries; everything is small enough for a debug-mode
//! tier-1 pass.

use kernels::runner::{run_experiment_configured, ExperimentSpec, KernelSpec};
use kernels::workloads::{
    BarrierKind, BarrierWorkload, LockKind, LockWorkload, PostRelease, ReductionKind, ReductionWorkload,
};
use ppc_bench::observed::run_kernel;
use ppc_bench::sweep::RunSpec;
use sim_machine::{Machine, MachineConfig};
use sim_proto::Protocol;

const PROTOCOLS: [Protocol; 3] =
    [Protocol::WriteInvalidate, Protocol::PureUpdate, Protocol::CompetitiveUpdate];

/// Shard counts under test: an even split, the maximum contiguous split
/// of 8 nodes, and (at 8 procs) one node per shard.
const SHARDS: [usize; 3] = [2, 4, 8];

fn pdes_lock() -> KernelSpec {
    KernelSpec::Lock(LockWorkload {
        kind: LockKind::Mcs,
        total_acquires: 160,
        cs_cycles: 30,
        post_release: PostRelease::None,
    })
}

fn pdes_barrier() -> KernelSpec {
    KernelSpec::Barrier(BarrierWorkload { kind: BarrierKind::Centralized, episodes: 28 })
}

fn pdes_reduction() -> KernelSpec {
    // Nonzero skew exercises the per-processor RandDelay streams under
    // sharding, where a mis-merged queue would reorder their draws.
    KernelSpec::Reduction(ReductionWorkload { kind: ReductionKind::Parallel, episodes: 6, skew: 16 })
}

fn kernels_under_test() -> [KernelSpec; 3] {
    [pdes_lock(), pdes_barrier(), pdes_reduction()]
}

#[test]
fn sharded_fingerprint_chains_equal_serial_for_every_kernel_and_protocol() {
    for kernel in kernels_under_test() {
        for protocol in PROTOCOLS {
            let serial = run_kernel(&mut Machine::new(MachineConfig::paper_hostobs(8, protocol)), &kernel);
            let chain = serial.fingerprint.as_ref().expect("serial hostobs run carries a fingerprint");
            for shards in SHARDS {
                let sharded = run_kernel(
                    &mut Machine::new(MachineConfig::paper_hostobs(8, protocol).with_shards(shards)),
                    &kernel,
                );
                let fp = sharded.fingerprint.as_ref().expect("sharded run carries a fingerprint");
                assert_eq!(
                    chain.first_divergence(fp),
                    None,
                    "{kernel:?} {protocol:?} {shards} shards: chain diverged from serial"
                );
                assert_eq!(serial.cycles, sharded.cycles, "{kernel:?} {protocol:?} {shards} shards");
                assert_eq!(
                    serial.instructions, sharded.instructions,
                    "{kernel:?} {protocol:?} {shards} shards"
                );
            }
        }
    }
}

#[test]
fn sharded_outcomes_feed_figures_identically() {
    // The figure tables render from `ExperimentOutcome`; Debug formatting
    // enumerates every field (latencies, full traffic classification,
    // network counters, stall histograms), so string equality here means
    // the rendered figure bytes cannot differ either.
    for (procs, kernel, protocol) in [
        (1usize, pdes_lock(), Protocol::WriteInvalidate),
        (2, pdes_lock(), Protocol::PureUpdate),
        (4, pdes_barrier(), Protocol::CompetitiveUpdate),
        (8, pdes_barrier(), Protocol::WriteInvalidate),
        (8, pdes_reduction(), Protocol::PureUpdate),
    ] {
        let spec = ExperimentSpec { procs, protocol, kernel };
        let serial = run_experiment_configured(&spec, MachineConfig::paper(procs, protocol));
        for shards in SHARDS {
            let cfg = MachineConfig::paper(procs, protocol).with_shards(shards);
            let sharded = run_experiment_configured(&spec, cfg);
            assert_eq!(
                format!("{serial:?}"),
                format!("{sharded:?}"),
                "{procs} procs {protocol:?} {shards} shards: outcome diverged"
            );
        }
    }
}

#[test]
fn one_shard_is_the_serial_core() {
    // `shards: 1` must select the serial `EventQueue` code path, bit-exact
    // with a default configuration — not a degenerate sharded core.
    let kernel = pdes_lock();
    for protocol in PROTOCOLS {
        let spec = ExperimentSpec { procs: 4, protocol, kernel };
        let default_cfg = run_experiment_configured(&spec, MachineConfig::paper(4, protocol));
        let one_shard = run_experiment_configured(&spec, MachineConfig::paper(4, protocol).with_shards(1));
        assert_eq!(format!("{default_cfg:?}"), format!("{one_shard:?}"), "{protocol:?}");
        // And no PDES observability section appears.
        let r = run_kernel(&mut Machine::new(MachineConfig::paper_hostobs(4, protocol)), &kernel);
        assert!(r.host.expect("hostobs on").pdes.is_none(), "{protocol:?}");
    }
}

#[test]
fn shard_counts_never_share_a_cache_key() {
    let kernel = pdes_lock();
    let spec = ExperimentSpec { procs: 8, protocol: Protocol::WriteInvalidate, kernel };
    let keys: Vec<String> = [1usize, 2, 4, 8]
        .into_iter()
        .map(|shards| {
            RunSpec::with_config(spec, MachineConfig::paper(8, Protocol::WriteInvalidate).with_shards(shards))
                .cache_key()
        })
        .collect();
    for i in 0..keys.len() {
        for j in (i + 1)..keys.len() {
            assert_ne!(keys[i], keys[j], "shard counts {i} and {j} alias in the sweep cache");
        }
    }
}

#[test]
fn sharded_pdes_report_is_consistent_with_the_chain() {
    // Cross-check the observability numbers against queue ground truth:
    // every committed event is some shard's pop, and the handoff/direct
    // split covers all cross-shard scheduling.
    let r = run_kernel(
        &mut Machine::new(MachineConfig::paper_hostobs(8, Protocol::PureUpdate).with_shards(4)),
        &pdes_barrier(),
    );
    let fp = r.fingerprint.as_ref().expect("fingerprint on");
    let pdes = r.host.expect("hostobs on").pdes.expect("sharded run surfaces a PDES section");
    let pops: u64 = pdes.per_shard.iter().map(|s| s.pops).sum();
    // Every fingerprinted event is some shard's pop; the post-halt drain
    // may pop (without dispatching) a few stale CPU resumptions on top.
    assert!(pops >= fp.total_events, "pops {pops} < fingerprinted events {}", fp.total_events);
    assert!(pdes.epochs > 0 && pdes.handoff_events > 0);
    assert!(pdes.lookahead >= 1);
    assert!(pdes.folded_chain_hex().is_some(), "all sub-chains present");
}

//! End-to-end checks of the synchronization-aware critical-path profiler:
//! the causal chain reconciles exactly against the stall accounting under
//! every protocol, lock handoff records are internally consistent, and the
//! episode analytics mechanically reproduce the paper's claims — MCS
//! handoff latency is remote-miss dominated under write-invalidate and
//! collapses to release visibility under the update protocols, and
//! reduction barrier time is arrival imbalance, not release broadcast.

use kernels::workloads::{
    BarrierKind, BarrierWorkload, LockKind, LockWorkload, PostRelease, ReductionKind, ReductionWorkload,
};
use kernels::{barriers, locks, reductions};
use sim_machine::{Machine, MachineConfig, RunResult};
use sim_proto::Protocol;
use sim_stats::{check_reconciliation, CritReport, Json};

const PROTOCOLS: [Protocol; 3] =
    [Protocol::WriteInvalidate, Protocol::PureUpdate, Protocol::CompetitiveUpdate];

/// The magic lock/barrier id space (`machine::MAGIC_SYNC_BASE`): magic
/// episodes report clear of the kernel marker ids, which start at 0.
const MAGIC_SYNC_BASE: u32 = 0x100;

#[derive(Clone, Copy)]
enum Spec {
    Lock(LockWorkload),
    Barrier(BarrierWorkload),
    Reduction(ReductionWorkload),
}

fn mcs(total: u32) -> Spec {
    Spec::Lock(LockWorkload {
        kind: LockKind::Mcs,
        total_acquires: total,
        cs_cycles: 20,
        post_release: PostRelease::None,
    })
}

fn run_observed(procs: usize, protocol: Protocol, spec: Spec) -> RunResult {
    let mut m = Machine::new(MachineConfig::paper_observed(procs, protocol));
    match spec {
        Spec::Lock(w) => {
            let layout = locks::install(&mut m, &w);
            let r = m.run();
            locks::verify(&mut m, &w, &layout);
            r
        }
        Spec::Barrier(w) => {
            let layout = barriers::install(&mut m, &w);
            let r = m.run();
            barriers::verify(&mut m, &w, &layout);
            r
        }
        Spec::Reduction(w) => {
            let layout = reductions::install(&mut m, &w);
            let r = m.run();
            reductions::verify(&mut m, &w, &layout);
            r
        }
    }
}

fn crit(r: &RunResult) -> &CritReport {
    r.obs.as_ref().expect("observed run").crit.as_ref().expect("observed runs carry the episode profiler")
}

#[test]
fn chain_reconciles_against_stall_accounting_everywhere() {
    let specs: [(&str, Spec); 6] = [
        ("mcs-lock", mcs(64)),
        (
            "ticket-lock",
            Spec::Lock(LockWorkload {
                kind: LockKind::Ticket,
                total_acquires: 64,
                cs_cycles: 20,
                post_release: PostRelease::None,
            }),
        ),
        ("central-barrier", Spec::Barrier(BarrierWorkload { kind: BarrierKind::Centralized, episodes: 24 })),
        (
            "dissemination-barrier",
            Spec::Barrier(BarrierWorkload { kind: BarrierKind::Dissemination, episodes: 24 }),
        ),
        (
            "par-reduction",
            Spec::Reduction(ReductionWorkload { kind: ReductionKind::Parallel, episodes: 20, skew: 0 }),
        ),
        (
            "seq-reduction",
            Spec::Reduction(ReductionWorkload { kind: ReductionKind::Sequential, episodes: 20, skew: 0 }),
        ),
    ];
    for (name, spec) in specs {
        for protocol in PROTOCOLS {
            let r = run_observed(4, protocol, spec);
            let obs = r.obs.as_ref().unwrap();
            check_reconciliation(crit(&r), r.cycles, &obs.phase_totals)
                .unwrap_or_else(|e| panic!("{name} under {protocol:?}: {e}"));
        }
    }
}

#[test]
fn critical_path_tail_is_a_contiguous_suffix_of_the_run() {
    let r = run_observed(4, Protocol::WriteInvalidate, mcs(64));
    let c = &crit(&r).critical_path;
    assert!(!c.segments.is_empty());
    let retained: u64 = c.segments.iter().map(|s| s.end - s.start).sum();
    assert_eq!(retained + c.elided_cycles, c.wall, "tail + compacted prefix covers the run");
    for w in c.segments.windows(2) {
        assert_eq!(w[1].start, w[0].end, "retained tail is contiguous");
    }
    assert_eq!(c.segments.last().unwrap().end, c.wall, "chain ends at the wall clock");
}

#[test]
fn mcs_handoff_records_are_internally_consistent() {
    for protocol in PROTOCOLS {
        let r = run_observed(8, protocol, mcs(64));
        let report = crit(&r);
        let l = report.lock(0).unwrap_or_else(|| panic!("{protocol:?}: kernel lock id 0 reported"));
        assert_eq!(l.acquires, 64, "{protocol:?}");
        assert_eq!(l.handoffs, 63, "{protocol:?}: every acquire after the first is a handoff");
        assert_eq!(l.records.len(), 63, "{protocol:?}: under the cap, every handoff is retained");
        assert_eq!(l.records_dropped, 0, "{protocol:?}");
        let (mut rv, mut rm, mut other, mut queue) = (0, 0, 0, 0);
        for h in &l.records {
            assert!(h.acquired_at >= h.released_at, "{protocol:?}");
            assert_eq!(
                h.release_visibility + h.remote_miss + h.other,
                h.latency(),
                "{protocol:?}: the split covers the release→acquire window exactly"
            );
            rv += h.release_visibility;
            rm += h.remote_miss;
            other += h.other;
            queue += h.queue_wait;
        }
        assert_eq!(rv, l.release_visibility, "{protocol:?}");
        assert_eq!(rm, l.remote_miss, "{protocol:?}");
        assert_eq!(other, l.other, "{protocol:?}");
        assert_eq!(queue, l.queue_wait, "{protocol:?}");
        assert_eq!(l.handoff_cycles(), rv + rm + other, "{protocol:?}");
    }
}

/// The paper's Section 4.1 claim, mechanically: under write-invalidate the
/// MCS handoff is dominated by the successor's remote miss re-fetching its
/// spin flag; the update protocols deliver the release in place, so the
/// miss component vanishes and the handoff gets cheaper.
#[test]
fn mcs_handoff_is_remote_miss_dominated_under_wi_and_cheaper_under_updates() {
    let wi = run_observed(8, Protocol::WriteInvalidate, mcs(64));
    let pu = run_observed(8, Protocol::PureUpdate, mcs(64));
    let cu = run_observed(8, Protocol::CompetitiveUpdate, mcs(64));
    let (wi, pu, cu) = (crit(&wi), crit(&pu), crit(&cu));
    let (lwi, lpu, lcu) = (wi.lock(0).unwrap(), pu.lock(0).unwrap(), cu.lock(0).unwrap());
    assert!(
        lwi.remote_miss > lwi.release_visibility,
        "WI handoff is remote-miss dominated: miss {} vs visibility {}",
        lwi.remote_miss,
        lwi.release_visibility
    );
    assert_eq!(lpu.remote_miss, 0, "pure update delivers the release in place");
    assert_eq!(lcu.remote_miss, 0, "the spin keeps the flag line above the competitive threshold");
    let avg = |l: &sim_stats::LockReport| l.handoff_cycles() as f64 / l.handoffs as f64;
    assert!(
        avg(lwi) > avg(lpu) && avg(lwi) > avg(lcu),
        "updates shorten the handoff: WI {:.1} vs PU {:.1} / CU {:.1}",
        avg(lwi),
        avg(lpu),
        avg(lcu)
    );
}

/// The paper's Section 4.2/4.3 claim, mechanically: with real (serialized)
/// work between episodes, barrier time is arrival imbalance, not release
/// broadcast — under every protocol.
#[test]
fn reduction_barrier_time_is_arrival_imbalance_not_release_broadcast() {
    for protocol in PROTOCOLS {
        let r = run_observed(
            8,
            protocol,
            Spec::Reduction(ReductionWorkload { kind: ReductionKind::Parallel, episodes: 20, skew: 0 }),
        );
        let report = crit(&r);
        let b = report
            .barrier(MAGIC_SYNC_BASE)
            .unwrap_or_else(|| panic!("{protocol:?}: magic barrier reported under the magic id space"));
        // The parallel reduction crosses the magic barrier twice per
        // episode (before and after combining).
        assert_eq!(b.episodes, 40, "{protocol:?}");
        assert_eq!(b.incomplete, 0, "{protocol:?}");
        assert!(
            b.imbalance_cycles > b.fanout_cycles,
            "{protocol:?}: imbalance {} should dominate fanout {}",
            b.imbalance_cycles,
            b.fanout_cycles
        );
        assert!(report.lock(MAGIC_SYNC_BASE).is_some(), "{protocol:?}: combining lock reported too");
    }
}

/// The flip side on the pure spin-barrier microbenchmark: with no work
/// between episodes arrivals are synchronized, so what's left is the
/// release broadcast — and write-invalidate pays more for it than pure
/// update (the spin crowd re-faults the sense word).
#[test]
fn central_barrier_release_broadcast_costs_more_under_wi() {
    let spec = Spec::Barrier(BarrierWorkload { kind: BarrierKind::Centralized, episodes: 24 });
    let wi = run_observed(8, Protocol::WriteInvalidate, spec);
    let pu = run_observed(8, Protocol::PureUpdate, spec);
    let (bwi, bpu) = (crit(&wi).barrier(0).unwrap().clone(), crit(&pu).barrier(0).unwrap().clone());
    assert_eq!(bwi.episodes, 24);
    assert_eq!(bwi.incomplete, 0);
    for e in &bwi.records {
        assert!(e.first_arrive <= e.last_arrive && e.last_arrive <= e.last_depart);
    }
    assert!(
        bwi.fanout_cycles > bpu.fanout_cycles,
        "WI fanout {} should exceed PU fanout {}",
        bwi.fanout_cycles,
        bpu.fanout_cycles
    );
}

/// The full `obs_report`-shaped trace (three protocols sharing one trace,
/// cpu timelines + lineage lanes + the new sync-episode lanes) is valid
/// Chrome JSON: every async begin has exactly one matching end at a later
/// or equal timestamp, and every track's slices appear in non-negative,
/// monotonically non-decreasing timestamp order.
#[test]
fn exported_trace_is_well_formed_across_all_lanes() {
    use sim_machine::{export_run, Trace, CRIT_TRACK_BASE, NET_TRACK_BASE};
    use sim_stats::ChromeTrace;
    use std::collections::HashMap;

    let mut trace = ChromeTrace::new();
    let mut next_flow_id = 0;
    for (i, protocol) in PROTOCOLS.into_iter().enumerate() {
        let mut m = Machine::new(MachineConfig::paper_observed(4, protocol));
        m.enable_trace(Trace::new(Trace::MAX_CAPACITY));
        let Spec::Lock(w) = mcs(48) else { unreachable!() };
        let layout = locks::install(&mut m, &w);
        let r = m.run();
        locks::verify(&mut m, &w, &layout);
        let events = m.take_trace().unwrap();
        let stats = export_run(&mut trace, i as u64 + 1, "p", &r, events.events(), next_flow_id);
        next_flow_id = stats.next_flow_id;
    }

    let parsed = Json::parse(&trace.render()).expect("trace renders as valid JSON");
    let events = parsed.as_arr().expect("trace is a JSON array");
    assert!(!events.is_empty());

    let field = |e: &Json, k: &str| e.get(k).and_then(Json::as_u64);
    let mut last_ts: HashMap<(u64, u64), u64> = HashMap::new();
    // (pid, cat, id) -> (begin count, end count, begin ts, end ts).
    type FlowEnds = (u64, u64, Option<u64>, Option<u64>);
    let mut flows: HashMap<(u64, String, u64), FlowEnds> = HashMap::new();
    let mut crit_tracks = 0;
    let mut net_tracks = 0;
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("every event has a phase");
        let pid = field(e, "pid").expect("every event has a pid");
        let tid = field(e, "tid").expect("every event has a tid");
        let ts = field(e, "ts").expect("timestamps are non-negative integers");
        match ph {
            "X" => {
                field(e, "dur").expect("complete events carry a non-negative dur");
                let prev = last_ts.insert((pid, tid), ts).unwrap_or(0);
                assert!(ts >= prev, "track ({pid},{tid}): slice at {ts} after one at {prev}");
            }
            "b" | "e" => {
                let cat = e.get("cat").and_then(Json::as_str).unwrap_or("").to_string();
                let id = field(e, "id").expect("async events carry an id");
                let slot = flows.entry((pid, cat, id)).or_insert((0, 0, None, None));
                if ph == "b" {
                    slot.0 += 1;
                    slot.2 = Some(ts);
                } else {
                    slot.1 += 1;
                    slot.3 = Some(ts);
                }
            }
            "i" | "M" => {}
            other => panic!("unexpected event phase {other:?}"),
        }
        if ph == "M" && (CRIT_TRACK_BASE..NET_TRACK_BASE).contains(&tid) {
            crit_tracks += 1;
        }
        if ph == "M" && tid >= NET_TRACK_BASE {
            net_tracks += 1;
        }
    }
    for ((pid, cat, id), (b, e, bts, ets)) in &flows {
        assert_eq!((b, e), (&1, &1), "flow {pid}/{cat}/{id} must be a matched begin/end pair");
        assert!(ets.unwrap() >= bts.unwrap(), "flow {pid}/{cat}/{id} ends before it begins");
    }
    assert_eq!(crit_tracks, 3, "each protocol contributes its lock-ownership track");
    assert!(net_tracks >= 3, "each protocol contributes per-link utilisation tracks");
    assert!(
        flows.keys().any(|(_, cat, _)| cat == "crit"),
        "the critical-path tail contributes causal arrows"
    );
}

#[test]
fn crit_report_serializes_to_valid_json() {
    let r = run_observed(4, Protocol::WriteInvalidate, mcs(64));
    let doc = crit(&r).to_json(&|p| format!("phase{p}"));
    let parsed = Json::parse(&doc.render_pretty()).expect("valid JSON");
    assert!(parsed.get("wall_cycles").is_some());
    assert!(parsed.get("critical_path").and_then(|c| c.get("by_class")).is_some());
}

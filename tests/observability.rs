//! End-to-end checks of the observability subsystem: cycle accounting
//! closes exactly against the wall clock, sampling is on-cadence and
//! deterministic, phases attribute where the kernels say they do, and the
//! Chrome-trace export is well-formed.

use kernels::workloads::{LockKind, LockWorkload, PostRelease};
use kernels::{locks, phase};
use sim_machine::{export_run, Machine, MachineConfig, RunResult, Trace};
use sim_proto::Protocol;
use sim_stats::{ChromeTrace, CpuClass, Json, ObsReport, CPU_CLASSES};

const PROTOCOLS: [Protocol; 3] =
    [Protocol::WriteInvalidate, Protocol::PureUpdate, Protocol::CompetitiveUpdate];

fn lock_workload(total: u32) -> LockWorkload {
    LockWorkload {
        kind: LockKind::Mcs,
        total_acquires: total,
        cs_cycles: 20,
        post_release: PostRelease::None,
    }
}

fn run_observed_lock(procs: usize, protocol: Protocol) -> RunResult {
    let w = lock_workload(64);
    let mut m = Machine::new(MachineConfig::paper_observed(procs, protocol));
    let layout = locks::install(&mut m, &w);
    let r = m.run();
    locks::verify(&mut m, &w, &layout);
    r
}

#[test]
fn per_node_accounts_sum_to_wall_clock_under_every_protocol() {
    for protocol in PROTOCOLS {
        let r = run_observed_lock(4, protocol);
        let obs = r.obs.as_ref().expect("observed run");
        assert_eq!(obs.wall_cycles, r.cycles, "{protocol:?}");
        for (n, node) in obs.per_node.iter().enumerate() {
            assert_eq!(
                node.cycles.total(),
                r.cycles,
                "{protocol:?} node {n}: classes must cover every cycle exactly once"
            );
            let phase_sum: u64 = node.by_phase.values().map(|a| a.total()).sum();
            assert_eq!(phase_sum, r.cycles, "{protocol:?} node {n}: phase split covers the run");
        }
        let grand: u64 = obs.phase_totals.values().map(|a| a.total()).sum();
        assert_eq!(grand, r.cycles * obs.per_node.len() as u64, "{protocol:?}");
    }
}

#[test]
fn lock_phases_attribute_where_expected() {
    let r = run_observed_lock(4, Protocol::WriteInvalidate);
    let obs = r.obs.as_ref().unwrap();
    // Every processor ran 16 critical sections of 20 cycles; the `hold`
    // phase is pure delay, so its machine-wide total is exact.
    assert_eq!(obs.phase_totals[&phase::HOLD].total(), 64 * 20);
    // Contended MCS: waiting dominates inside `acquire`, and the spin wait
    // lands in BarrierWait there, not in `hold` or `setup`.
    let acquire = &obs.phase_totals[&phase::ACQUIRE];
    assert!(acquire.get(CpuClass::BarrierWait) > 0, "spin wait shows up in acquire");
    assert_eq!(obs.phase_totals[&phase::HOLD].get(CpuClass::BarrierWait), 0);
}

#[test]
fn sampler_runs_on_cadence() {
    let r = run_observed_lock(4, Protocol::WriteInvalidate);
    let obs = r.obs.as_ref().unwrap();
    let samples = obs.samples.samples();
    assert!(!samples.is_empty(), "run is long enough to sample");
    for (i, s) in samples.iter().enumerate() {
        assert_eq!(s.at, (i as u64 + 1) * obs.sample_interval, "sample {i} on the grid");
        assert_eq!(s.nodes.len(), 4);
    }
    assert!(samples.last().unwrap().at <= r.cycles, "sampling stops once every processor halted");
}

#[test]
fn zero_length_run_observes_cleanly() {
    // No programs: the machine halts at cycle 0 and the sampler never
    // fires, but the report is still complete and serializable.
    let mut m = Machine::new(MachineConfig::paper_observed(2, Protocol::WriteInvalidate));
    let r = m.run();
    assert_eq!(r.cycles, 0);
    let obs = r.obs.as_ref().expect("observed config");
    assert_eq!(obs.wall_cycles, 0);
    assert!(obs.samples.is_empty(), "nothing to sample in a zero-cycle run");
    for node in &obs.per_node {
        assert_eq!(node.cycles.total(), 0);
    }
    let lineage = obs.lineage.as_ref().expect("lineage attaches even to empty runs");
    assert!(lineage.blocks.is_empty(), "no accesses, no traced blocks");
    Json::parse(&obs.to_json().render()).expect("empty report serializes");
}

#[test]
fn single_cycle_run_accounts_fully_without_samples() {
    let mut m = Machine::new(MachineConfig::paper_observed(2, Protocol::WriteInvalidate));
    let mut b = sim_isa::ProgramBuilder::new();
    b.delay(1).halt();
    m.set_program(0, b.build());
    let r = m.run();
    assert!(r.cycles >= 1, "the delay costs at least one cycle");
    let obs = r.obs.as_ref().unwrap();
    assert_eq!(obs.wall_cycles, r.cycles);
    // Far below the sampling interval: the series stays empty rather than
    // emitting a partial tick.
    assert!(r.cycles < obs.sample_interval);
    assert!(obs.samples.is_empty());
    for (n, node) in obs.per_node.iter().enumerate() {
        assert_eq!(node.cycles.total(), r.cycles, "node {n} covers the whole run");
    }
}

#[test]
fn observed_reruns_are_deterministic() {
    let a = run_observed_lock(4, Protocol::CompetitiveUpdate);
    let b = run_observed_lock(4, Protocol::CompetitiveUpdate);
    assert_eq!(a.cycles, b.cycles);
    let (oa, ob) = (a.obs.as_ref().unwrap(), b.obs.as_ref().unwrap());
    assert_eq!(oa.samples.len(), ob.samples.len());
    for (sa, sb) in oa.samples.samples().iter().zip(ob.samples.samples()) {
        assert_eq!(sa.at, sb.at);
        assert_eq!(sa.nodes, sb.nodes);
        assert_eq!(sa.msgs_sent, sb.msgs_sent);
        assert_eq!(sa.flits_sent, sb.flits_sent);
    }
    for (na, nb) in oa.per_node.iter().zip(&ob.per_node) {
        assert_eq!(na.cycles, nb.cycles);
        assert_eq!(na.timeline, nb.timeline);
    }
}

#[test]
fn observing_does_not_change_results() {
    for protocol in PROTOCOLS {
        let w = lock_workload(64);
        let mut plain = Machine::new(MachineConfig::paper(4, protocol));
        locks::install(&mut plain, &w);
        let rp = plain.run();
        let ro = run_observed_lock(4, protocol);
        assert_eq!(rp.cycles, ro.cycles, "{protocol:?}: observation is passive");
        assert_eq!(rp.instructions, ro.instructions, "{protocol:?}");
        assert_eq!(rp.traffic.misses, ro.traffic.misses, "{protocol:?}: per-class miss counts");
        assert_eq!(rp.traffic.updates, ro.traffic.updates, "{protocol:?}: per-class update counts");
    }
}

#[test]
fn message_counts_match_net_counters() {
    let r = run_observed_lock(4, Protocol::PureUpdate);
    let obs = r.obs.as_ref().unwrap();
    let counted: u64 = obs.msg_counts.values().sum();
    assert_eq!(counted, r.net.messages + r.net.local_messages);
    assert_eq!(obs.msg_latency.count(), counted);
    let flits: u64 = obs.endpoint_pair_flits.iter().map(|l| l.flits).sum();
    assert_eq!(flits, r.net.flits, "per-endpoint-pair flits sum to the global counter");
}

/// A 2-node WI ping-pong whose Chrome trace must have every send matched
/// with its handle (the golden-shape check for the flow exporter).
#[test]
fn chrome_trace_flow_pairs_match_for_ping_pong() {
    let mut m = Machine::new(MachineConfig::paper_observed(2, Protocol::WriteInvalidate));
    m.enable_trace(Trace::new(Trace::MAX_CAPACITY));
    let w = lock_workload(32);
    let layout = locks::install(&mut m, &w);
    let mut r = m.run();
    locks::verify(&mut m, &w, &layout);
    if let Some(obs) = r.obs.as_mut() {
        obs.set_phase_names(phase::names());
    }
    assert_eq!(r.trace_dropped, 0, "trace buffer held the whole run");
    let events = m.take_trace().unwrap();

    let mut trace = ChromeTrace::new();
    let stats = export_run(&mut trace, 1, "WI", &r, events.events(), 0);
    assert!(stats.flow_pairs > 0);
    assert_eq!(stats.unmatched_handles, 0, "every handle found its send");
    assert_eq!(stats.unmatched_sends, 0, "every send was handled");

    let parsed = Json::parse(&trace.render()).expect("trace renders as valid JSON");
    let events = parsed.as_arr().unwrap();
    let begins: Vec<_> = events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("b")).collect();
    let ends: Vec<_> = events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("e")).collect();
    // Message flows plus the lineage exporter's invalidation→miss flows:
    // every consumed flow id produced exactly one begin/end pair.
    assert!(stats.next_flow_id >= stats.flow_pairs);
    assert_eq!(begins.len() as u64, stats.next_flow_id);
    assert_eq!(begins.len(), ends.len());
    for (b, e) in begins.iter().zip(&ends) {
        assert_eq!(b.get("id"), e.get("id"), "pairs are emitted adjacently");
        assert_eq!(b.get("cat"), e.get("cat"));
        assert!(
            b.get("ts").and_then(Json::as_u64) <= e.get("ts").and_then(Json::as_u64),
            "flow ends at or after its begin"
        );
    }
    // Phase names flowed through to the slice args.
    assert!(events.iter().any(|e| {
        e.get("ph").and_then(Json::as_str) == Some("X")
            && e.get("args").and_then(|a| a.get("phase")).and_then(Json::as_str) == Some("acquire")
    }));
}

#[test]
fn report_json_is_complete_and_parses() {
    let mut r = run_observed_lock(4, Protocol::WriteInvalidate);
    r.obs.as_mut().unwrap().set_phase_names(phase::names());
    let obs: &ObsReport = r.obs.as_ref().unwrap();
    let rendered = obs.to_json().render_pretty();
    let parsed = Json::parse(&rendered).expect("report parses");
    assert_eq!(parsed.get("wall_cycles").and_then(Json::as_u64), Some(r.cycles));
    let per_node = parsed.get("per_node").unwrap().as_arr().unwrap();
    assert_eq!(per_node.len(), 4);
    for node in per_node {
        let sum: u64 = CPU_CLASSES
            .iter()
            .map(|c| node.get("cycles").unwrap().get(c.name()).and_then(Json::as_u64).unwrap())
            .sum();
        assert_eq!(sum, r.cycles);
    }
    assert!(parsed.get("phase_totals").unwrap().get("acquire").is_some(), "names installed");
    assert!(parsed.get("endpoint_pair_flits").is_some(), "renamed from the pre-netobs link_flits key");
    assert!(parsed.get("link_flits").is_none(), "old key is gone from the schema");
    let netobs = parsed.get("netobs").expect("observed runs embed the network-telemetry report");
    assert!(netobs.get("journeys").is_some());
    assert!(netobs.get("homes").is_some());
}

//! Equivalence layer for the sweep harness.
//!
//! The harness promises that parallel execution and memoization are pure
//! plumbing: the rendered figure tables are byte-identical whether cells
//! are simulated serially, by competing worker threads, or replayed from
//! the on-disk cache — and a poisoned cache entry is detected and the
//! cell re-simulated rather than served wrong. These tests are the
//! enforcement of that promise.
//!
//! Workloads are deliberately small (hundreds of acquires/episodes, not
//! the paper's thousands) so the whole file runs in a debug-mode tier-1
//! pass; byte-identity does not depend on scale.

use kernels::runner::KernelSpec;
use kernels::workloads::{BarrierKind, BarrierWorkload, LockKind, LockWorkload, PostRelease};
use ppc_bench::sweep::{self, RunSpec, SweepOptions};
use ppc_bench::{render_latency_table, render_miss_table, render_update_table};
use sim_proto::Protocol;

const PROCS: [usize; 3] = [1, 2, 4];
const TRAFFIC_AT: usize = 4;

fn small_lock(kind: LockKind) -> KernelSpec {
    KernelSpec::Lock(LockWorkload {
        kind,
        total_acquires: 256,
        cs_cycles: 50,
        post_release: PostRelease::None,
    })
}

fn small_barrier(kind: BarrierKind) -> KernelSpec {
    KernelSpec::Barrier(BarrierWorkload { kind, episodes: 50 })
}

/// A miniature all_figures row set: every kernel family and protocol is
/// represented, so the equivalence check exercises the same code paths as
/// the real figure tables.
fn rows() -> Vec<(String, KernelSpec, Protocol)> {
    vec![
        ("tk i".into(), small_lock(LockKind::Ticket), Protocol::WriteInvalidate),
        ("tk u".into(), small_lock(LockKind::Ticket), Protocol::PureUpdate),
        ("MCS c".into(), small_lock(LockKind::Mcs), Protocol::CompetitiveUpdate),
        ("cb u".into(), small_barrier(BarrierKind::Centralized), Protocol::PureUpdate),
        ("db c".into(), small_barrier(BarrierKind::Dissemination), Protocol::CompetitiveUpdate),
    ]
}

/// Renders all three table kinds under one option set, concatenated.
fn render_all(opts: &SweepOptions) -> String {
    let (latency, csv) = render_latency_table("latency", &rows(), &PROCS, opts);
    // The CSV mirror must stay in lockstep with the table body.
    assert_eq!(csv.len(), rows().len() + 1);
    let miss = render_miss_table("misses", &rows(), TRAFFIC_AT, opts);
    let update = render_update_table("updates", &rows(), TRAFFIC_AT, opts);
    format!("{latency}{miss}{update}")
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ppc-sweep-eq-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn worker_count_does_not_change_a_single_byte() {
    let reference = render_all(&SweepOptions::serial_uncached());
    for workers in [2, 8] {
        sweep::clear_memo();
        let got = render_all(&SweepOptions { workers, disk_cache: None });
        assert_eq!(got, reference, "{workers}-worker sweep diverged from serial output");
    }
}

#[test]
fn warm_disk_cache_replays_byte_identical_tables() {
    let reference = render_all(&SweepOptions::serial_uncached());
    let dir = scratch_dir("warm");
    let opts = SweepOptions { workers: 4, disk_cache: Some(dir.clone()) };
    sweep::clear_memo();
    assert_eq!(render_all(&opts), reference, "cold cached sweep diverged");
    sweep::clear_memo();
    assert_eq!(render_all(&opts), reference, "warm cached sweep diverged");

    // The warm pass must actually have come from disk, not re-simulation.
    sweep::clear_memo();
    let spec = RunSpec::paper(TRAFFIC_AT, Protocol::WriteInvalidate, small_lock(LockKind::Ticket));
    let (_, stats) = sweep::run_specs_with(std::slice::from_ref(&spec), &opts);
    assert_eq!(stats.from_disk, 1, "expected a disk hit, got {stats:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A cache entry whose payload verifies but whose key belongs to a
/// different cell (a stale hash — e.g. written by an older binary whose
/// key derivation differed) must be treated as a miss and re-simulated,
/// never served as the other cell's result.
#[test]
fn poisoned_entry_under_stale_key_is_resimulated() {
    let dir = scratch_dir("poison");
    let opts = SweepOptions { workers: 1, disk_cache: Some(dir.clone()) };
    let victim = RunSpec::paper(2, Protocol::WriteInvalidate, small_lock(LockKind::Ticket));
    let donor = RunSpec::paper(2, Protocol::WriteInvalidate, small_barrier(BarrierKind::Centralized));

    sweep::clear_memo();
    let (outs, _) = sweep::run_specs_with(&[victim.clone(), donor.clone()], &opts);
    let honest_cycles = outs[0].cycles;
    assert_ne!(honest_cycles, outs[1].cycles, "test needs distinguishable cells");

    // Poison: the donor's (internally self-consistent) entry body lands
    // in the victim's slot, as a stale key-derivation change would do.
    let entry = |key: &str| dir.join(format!("{key}.run"));
    std::fs::copy(entry(&donor.cache_key()), entry(&victim.cache_key())).unwrap();

    sweep::clear_memo();
    let (outs, stats) = sweep::run_specs_with(std::slice::from_ref(&victim), &opts);
    assert_eq!(outs[0].cycles, honest_cycles, "poisoned entry was served");
    assert_eq!(stats.simulated, 1, "poisoned entry must force re-simulation, got {stats:?}");

    // And the re-simulation healed the cache: next read is a disk hit.
    sweep::clear_memo();
    let (_, stats) = sweep::run_specs_with(std::slice::from_ref(&victim), &opts);
    assert_eq!(stats.from_disk, 1, "rewritten entry should hit, got {stats:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A corrupted payload (checksum no longer matches) is likewise a miss.
#[test]
fn corrupted_payload_is_resimulated() {
    let dir = scratch_dir("corrupt");
    let opts = SweepOptions { workers: 1, disk_cache: Some(dir.clone()) };
    let spec = RunSpec::paper(2, Protocol::PureUpdate, small_lock(LockKind::Mcs));

    sweep::clear_memo();
    let (outs, _) = sweep::run_specs_with(std::slice::from_ref(&spec), &opts);
    let honest_cycles = outs[0].cycles;

    let path = dir.join(format!("{}.run", spec.cache_key()));
    let body = std::fs::read_to_string(&path).unwrap();
    let tampered = body.replacen("cycles=", "cycles=9", 1);
    assert_ne!(body, tampered);
    std::fs::write(&path, tampered).unwrap();

    sweep::clear_memo();
    let (outs, stats) = sweep::run_specs_with(std::slice::from_ref(&spec), &opts);
    assert_eq!(outs[0].cycles, honest_cycles);
    assert_eq!(stats.simulated, 1, "tampered entry must force re-simulation, got {stats:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}

//! End-to-end checks of the network-telemetry layer: journey stage sums
//! close exactly against delivery times for random raw-network traffic,
//! the full journey/link/home accounting reconciles against the
//! observability layer's network bookkeeping under every protocol, and
//! the hot-home analytics mechanically reproduce the paper's Section 4.2
//! claim — under pure update the centralized barrier counter's home node
//! is the machine's traffic hot spot with a majority-useless update mix,
//! and competitive update cuts the useless updates homed there.

use kernels::workloads::{BarrierKind, BarrierWorkload, LockKind, LockWorkload, PostRelease};
use kernels::{barriers, locks};
use sim_machine::{Machine, MachineConfig, RunResult};
use sim_net::{MeshShape, NetConfig, Network};
use sim_proto::Protocol;
use sim_stats::{check_net_reconciliation, NetObsReport};

const PROTOCOLS: [Protocol; 3] =
    [Protocol::WriteInvalidate, Protocol::PureUpdate, Protocol::CompetitiveUpdate];

/// Deterministic 64-bit generator (SplitMix64) for the property test.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Journey invariants on the raw network under random traffic: every
/// remote send's stage decomposition reproduces `delivered − inject`
/// exactly, the journeys' flit totals match `NetCounters::flits`, and the
/// per-physical-link sums match the journeys' flit·hop totals.
#[test]
fn random_traffic_journeys_decompose_and_reconcile() {
    for nodes in [2, 7, 12, 16] {
        let mut net = Network::new(nodes, NetConfig::default());
        net.enable_journeys();
        net.enable_phys_link_stats();
        let shape = MeshShape::for_nodes(nodes);
        let mut rng = SplitMix64(0xC0FF_EE00 + nodes as u64);
        let (mut flits, mut flit_hops, mut remote) = (0u64, 0u64, 0u64);
        let mut now = 0;
        for _ in 0..500 {
            now += rng.next() % 7;
            let src = (rng.next() % nodes as u64) as usize;
            let dst = (rng.next() % nodes as u64) as usize;
            let payload = (rng.next() % 65) as u32;
            let delivered = net.send(now, src, dst, payload);
            let j = net.take_last_journey();
            if src == dst {
                assert!(j.is_none(), "local sends record no journey");
                continue;
            }
            let j = j.expect("every remote send records a journey");
            assert!(
                j.closes(),
                "journey {src}->{dst} at {now}: {} + {} + {} + {} != {}",
                j.tx_wait,
                j.tx_service(),
                j.wire,
                j.rx_wait,
                j.total()
            );
            assert_eq!(j.inject, now);
            assert_eq!(j.delivered, delivered);
            assert_eq!(j.hops, shape.hops(src, dst) as u64);
            remote += 1;
            flits += j.flits;
            flit_hops += j.flits * j.hops;
        }
        let c = net.counters();
        assert_eq!(c.messages, remote, "{nodes} nodes");
        assert_eq!(c.flits, flits, "{nodes} nodes: journey flits match the run counters");
        let phys: u64 = net.phys_link_flits().iter().map(|&(_, _, f)| f).sum();
        assert_eq!(phys, flit_hops, "{nodes} nodes: each flit is counted once per hop");
    }
}

fn central_barrier(episodes: u32) -> BarrierWorkload {
    BarrierWorkload { kind: BarrierKind::Centralized, episodes }
}

fn run_barrier(procs: usize, protocol: Protocol, w: BarrierWorkload) -> RunResult {
    let mut m = Machine::new(MachineConfig::paper_observed(procs, protocol));
    let layout = barriers::install(&mut m, &w);
    let r = m.run();
    barriers::verify(&mut m, &w, &layout);
    r
}

fn run_mcs(procs: usize, protocol: Protocol, total_acquires: u32) -> RunResult {
    let w =
        LockWorkload { kind: LockKind::Mcs, total_acquires, cs_cycles: 20, post_release: PostRelease::None };
    let mut m = Machine::new(MachineConfig::paper_observed(procs, protocol));
    let layout = locks::install(&mut m, &w);
    let r = m.run();
    locks::verify(&mut m, &w, &layout);
    r
}

fn netobs(r: &RunResult) -> &NetObsReport {
    r.obs.as_ref().expect("observed run").netobs.as_ref().expect("observed runs carry network telemetry")
}

/// The reconciliation check (journey stage sums, message/flit/cycle
/// totals, physical-link and per-home partitions) holds exactly under
/// every protocol for both a barrier and a lock kernel.
#[test]
fn journey_accounting_reconciles_under_every_protocol() {
    for protocol in PROTOCOLS {
        let r = run_barrier(8, protocol, central_barrier(24));
        check_net_reconciliation(netobs(&r), r.obs.as_ref().unwrap())
            .unwrap_or_else(|e| panic!("central-barrier under {protocol:?}: {e}"));
        let r = run_mcs(8, protocol, 64);
        check_net_reconciliation(netobs(&r), r.obs.as_ref().unwrap())
            .unwrap_or_else(|e| panic!("mcs-lock under {protocol:?}: {e}"));
    }
}

/// The paper's hot-spot story, mechanically: under PU the centralized
/// barrier counter's home node (node 0 — the workload allocates the
/// counter and sense words there) attracts the machine's peak rx-port
/// traffic, its update mix is majority-useless (counter proliferation),
/// and its memory module is the busiest. CU cuts the useless updates
/// homed at that node.
#[test]
fn pu_concentrates_useless_flits_on_the_barrier_home_and_cu_cuts_them() {
    let pu = run_barrier(16, Protocol::PureUpdate, central_barrier(24));
    let net_pu = netobs(&pu);

    let hot = net_pu.homes.iter().max_by_key(|h| h.homed_rx_flits).expect("homes reported");
    assert_eq!(hot.node, 0, "the counter's home node is the traffic hot spot");
    let total_flits = net_pu.totals().flits;
    assert!(
        hot.homed_rx_flits * 2 > total_flits,
        "the hot home dominates rx-port traffic: {} of {total_flits} flits",
        hot.homed_rx_flits
    );
    let share = hot.useless_share().expect("updates were classified at the hot home");
    assert!(share > 0.5, "majority-useless update mix under PU: {share:.3}");
    assert!(
        net_pu.homes.iter().all(|h| h.mem_busy <= net_pu.homes[0].mem_busy),
        "the hot home's memory module is the busiest"
    );
    assert_eq!(
        net_pu.homes.iter().map(|h| h.update_deliveries).max().unwrap(),
        net_pu.homes[0].update_deliveries,
        "update deliveries concentrate on the hot home's addresses"
    );

    let cu = run_barrier(16, Protocol::CompetitiveUpdate, central_barrier(24));
    let net_cu = netobs(&cu);
    assert!(
        net_cu.homes[0].updates.useless() < net_pu.homes[0].updates.useless(),
        "CU cuts the useless updates homed at the hot node: {} vs {}",
        net_cu.homes[0].updates.useless(),
        net_pu.homes[0].updates.useless()
    );
    assert!(net_cu.homes[0].update_drops > 0, "the competitive threshold actually dropped copies");
}

/// Journey aggregates tag messages with the structure labels the kernels
/// register, and the per-class × per-structure tables partition the same
/// traffic.
#[test]
fn journeys_are_attributed_to_registered_structures() {
    let r = run_barrier(8, Protocol::PureUpdate, central_barrier(24));
    let net = netobs(&r);
    assert!(net.by_structure.contains_key("count"), "barrier counter labeled: {:?}", net.by_structure.keys());
    assert!(net.by_structure.contains_key("sense"), "sense flag labeled");
    let class_msgs: u64 = net.by_class.values().map(|t| t.count).sum();
    let struct_msgs: u64 = net.by_structure.values().map(|t| t.count).sum();
    assert_eq!(class_msgs, struct_msgs, "both breakdowns cover every remote message");
    assert!(net.by_class.keys().any(|k| k.starts_with("Update")), "PU run carries update messages");
}

/// The physical-link layer sees real traffic: the canonical link
/// enumeration matches the mesh, totals equal the journeys' flit·hop
/// products, and the heatmap mentions every node.
#[test]
fn phys_links_and_heatmap_cover_the_mesh() {
    let r = run_barrier(16, Protocol::PureUpdate, central_barrier(24));
    let net = netobs(&r);
    let shape = net.shape();
    assert_eq!(net.phys_links.len(), shape.links().len());
    let phys: u64 = net.phys_links.iter().map(|l| l.flits).sum();
    assert_eq!(phys, net.totals().flit_hops);
    assert!(phys > 0, "the barrier generated mesh traffic");
    let map = net.heatmap();
    for n in 0..shape.nodes() {
        assert!(map.contains(&format!("n{n:02}")), "node {n} missing from heatmap:\n{map}");
    }
    let worst = net.worst_links(4);
    assert!(worst[0].flits >= worst[1].flits, "worst links sorted descending");
}

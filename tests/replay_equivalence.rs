//! Time-travel acceptance: restore-and-run-to-end is byte-identical to an
//! uninterrupted run for **every** diagnostic kernel under every protocol,
//! on the serial core and the sharded PDES core.
//!
//! Each cell runs a small-but-real workload twice — once plain, once with
//! epoch-aligned checkpoints — then restores the *last* checkpoint into a
//! fresh machine and drives it to completion. The resumed run must
//! reproduce the full run's figures exactly (cycles, classified traffic,
//! network counters, instructions, latency histograms), pass the kernel's
//! own correctness verifier, and extend the fingerprint chain with the
//! identical epoch digests and final state digest.

use kernels::runner::KernelSpec;
use kernels::workloads::{
    BarrierKind, BarrierWorkload, LockKind, LockWorkload, PostRelease, ReductionKind, ReductionWorkload,
};
use kernels::{barriers, locks, reductions};
use ppc_bench::observed::{protocol_name, KERNEL_NAMES};
use ppc_bench::PROTOCOLS;
use sim_machine::{Machine, MachineConfig, RunResult};

const PROCS: usize = 4;
/// Small fingerprint epoch = checkpoint cadence, so even these short
/// workloads cross several checkpoint boundaries.
const EPOCH: u64 = 128;

/// A scaled-down (but still contended) workload for each kernel the
/// diagnostic binaries accept — independent of `PPC_SCALE` so the test is
/// deterministic under any environment.
fn tiny_spec(name: &str) -> KernelSpec {
    let lock = |kind| {
        KernelSpec::Lock(LockWorkload {
            kind,
            total_acquires: 96,
            cs_cycles: 5,
            post_release: PostRelease::None,
        })
    };
    let barrier = |kind| KernelSpec::Barrier(BarrierWorkload { kind, episodes: 24 });
    let reduction = |kind| KernelSpec::Reduction(ReductionWorkload { kind, episodes: 24, skew: 0 });
    match name {
        "ticket-lock" => lock(LockKind::Ticket),
        "mcs-lock" => lock(LockKind::Mcs),
        "uc-mcs-lock" => lock(LockKind::McsUpdateConscious),
        "tas-lock" => lock(LockKind::TestAndSet),
        "ttas-lock" => lock(LockKind::TestAndTestAndSet),
        "anderson-lock" => lock(LockKind::AndersonQueue),
        "central-barrier" => barrier(BarrierKind::Centralized),
        "dissemination-barrier" => barrier(BarrierKind::Dissemination),
        "tree-barrier" => barrier(BarrierKind::Tree),
        "par-reduction" => reduction(ReductionKind::Parallel),
        "seq-reduction" => reduction(ReductionKind::Sequential),
        _ => panic!("unknown kernel {name}"),
    }
}

/// Installs `kernel`, runs the machine with `run`, and verifies the
/// kernel's own postcondition on the final memory image — so a resumed
/// machine is held to the same correctness bar as a fresh one.
fn install_run_verify(
    m: &mut Machine,
    kernel: &KernelSpec,
    run: impl FnOnce(&mut Machine) -> RunResult,
) -> RunResult {
    match kernel {
        KernelSpec::Lock(w) => {
            let layout = locks::install(m, w);
            let r = run(m);
            locks::verify(m, w, &layout);
            r
        }
        KernelSpec::Barrier(w) => {
            let layout = barriers::install(m, w);
            let r = run(m);
            barriers::verify(m, w, &layout);
            r
        }
        KernelSpec::Reduction(w) => {
            let layout = reductions::install(m, w);
            let r = run(m);
            reductions::verify(m, w, &layout);
            r
        }
    }
}

/// Every figure a run produces, as one comparable string.
fn digest(r: &RunResult) -> String {
    format!(
        "{} {:?} {:?} {} {:?} {:?}",
        r.cycles,
        r.traffic,
        r.net,
        r.instructions,
        r.read_latency.to_raw_parts(),
        r.atomic_latency.to_raw_parts()
    )
}

fn round_trip_cell(name: &str, shards: usize) {
    let kernel = tiny_spec(name);
    for protocol in PROTOCOLS {
        let mut cfg = MachineConfig::paper(PROCS, protocol).with_shards(shards);
        cfg.hostobs.fingerprint = true;
        cfg.hostobs.fingerprint_epoch = EPOCH;

        // Uninterrupted reference run (fingerprints on, checkpoints off).
        let mut full_m = Machine::new(cfg.clone());
        let full = install_run_verify(&mut full_m, &kernel, Machine::run);
        let full_chain = full.fingerprint.as_ref().expect("fingerprints on");

        // Checkpointed run: identical figures, plus snapshots mid-flight.
        let mut ck_m = Machine::new(cfg.clone().with_checkpoints(EPOCH));
        let ck_run = install_run_verify(&mut ck_m, &kernel, Machine::run);
        let tag = format!("{name}/{}/{shards} shards", protocol_name(protocol));
        assert_eq!(digest(&ck_run), digest(&full), "{tag}: checkpointing perturbed the run");
        let checkpoints = ck_m.take_checkpoints();
        assert!(!checkpoints.is_empty(), "{tag}: workload too short — no checkpoint fired");

        // Restore the deepest checkpoint and run to the end: byte-identical
        // figures and a fingerprint tail that matches the full chain.
        let ck = checkpoints.last().unwrap();
        let mut resumed_m = Machine::new(cfg.clone());
        let resumed = install_run_verify(&mut resumed_m, &kernel, |m| {
            m.restore(&ck.blob).expect("restore failed");
            assert_eq!(m.events_dispatched(), ck.events);
            m.run()
        });
        assert_eq!(
            digest(&resumed),
            digest(&full),
            "{tag}: resumed run diverged from checkpoint at event {} (cycle {})",
            ck.events,
            ck.cycle
        );
        let tail = resumed.fingerprint.as_ref().expect("fingerprints on");
        assert_eq!(tail.total_events, full_chain.total_events, "{tag}");
        assert!(tail.epochs.len() < full_chain.epochs.len(), "{tag}: checkpoint was at event 0");
        let offset = full_chain.epochs.len() - tail.epochs.len();
        assert_eq!(&full_chain.epochs[offset..], &tail.epochs[..], "{tag}: fingerprint tail diverged");
        assert_eq!(tail.state_digest, full_chain.state_digest, "{tag}: final state digest diverged");
    }
}

#[test]
fn every_kernel_resumes_byte_identically_serial() {
    for name in KERNEL_NAMES {
        round_trip_cell(name, 1);
    }
}

#[test]
fn every_kernel_resumes_byte_identically_sharded() {
    for name in KERNEL_NAMES {
        round_trip_cell(name, 4);
    }
}

#[test]
fn windowed_replay_reproduces_the_original_run() {
    // The driver-level zoom: replay a cycle window of an obs-off ticket
    // lock run with full observability, and prove the restored run still
    // reaches the original cycle count with a non-empty window report.
    let kernel = tiny_spec("ticket-lock");
    let mut probe_m = Machine::new(MachineConfig::paper(PROCS, sim_proto::Protocol::WriteInvalidate));
    let probe = install_run_verify(&mut probe_m, &kernel, Machine::run);
    let (c1, c2) = (probe.cycles / 3, 2 * probe.cycles / 3);
    let w = ppc_bench::replay::window_replay(PROCS, sim_proto::Protocol::WriteInvalidate, &kernel, c1, c2)
        .expect("window replays");
    assert_eq!(w.original_cycles, probe.cycles, "recording pass matches a plain run");
    assert_eq!(w.revalidated_cycles, w.original_cycles, "restored run reaches the original end");
    assert_eq!(w.window_result.cycles, c2, "window run stops at the requested end");
    let obs = w.window_result.obs.as_ref().expect("window ran observed");
    assert!(obs.per_node.iter().any(|n| n.cycles.total() > 0), "window obs report is empty");
}

//! The paper's qualitative results, asserted at test scale.
//!
//! These tests pin the *shape* of the reproduction — who wins, in which
//! regime — at iteration counts small enough for CI. The full-scale
//! numbers live in `crates/bench` (see EXPERIMENTS.md).

use kernels::runner::{run_experiment, ExperimentOutcome, ExperimentSpec, KernelSpec};
use kernels::workloads::{
    BarrierKind, BarrierWorkload, LockKind, LockWorkload, PostRelease, ReductionKind, ReductionWorkload,
};
use sim_proto::Protocol;

fn lock(kind: LockKind, protocol: Protocol, procs: usize) -> ExperimentOutcome {
    run_experiment(&ExperimentSpec {
        procs,
        protocol,
        kernel: KernelSpec::Lock(LockWorkload {
            kind,
            total_acquires: 960,
            cs_cycles: 50,
            post_release: PostRelease::None,
        }),
    })
}

fn barrier(kind: BarrierKind, protocol: Protocol, procs: usize) -> ExperimentOutcome {
    run_experiment(&ExperimentSpec {
        procs,
        protocol,
        kernel: KernelSpec::Barrier(BarrierWorkload { kind, episodes: 150 }),
    })
}

fn reduction(kind: ReductionKind, protocol: Protocol, procs: usize) -> ExperimentOutcome {
    run_experiment(&ExperimentSpec {
        procs,
        protocol,
        kernel: KernelSpec::Reduction(ReductionWorkload { kind, episodes: 150, skew: 0 }),
    })
}

// ---------------------------------------------------------------------
// Section 4.1 — spin locks
// ---------------------------------------------------------------------

#[test]
fn ticket_lock_update_protocols_beat_wi_at_scale() {
    // Figure 8: "both [update] protocols perform significantly better than
    // WI for all machine configurations" (centralized lock).
    for procs in [8usize, 16] {
        let wi = lock(LockKind::Ticket, Protocol::WriteInvalidate, procs).avg_latency;
        let pu = lock(LockKind::Ticket, Protocol::PureUpdate, procs).avg_latency;
        let cu = lock(LockKind::Ticket, Protocol::CompetitiveUpdate, procs).avg_latency;
        assert!(pu < wi / 2.0, "P={procs}: PU {pu} ≪ WI {wi}");
        assert!(cu < wi / 2.0, "P={procs}: CU {cu} ≪ WI {wi}");
    }
}

#[test]
fn mcs_under_cu_is_best_at_scale() {
    // Figure 8: "the MCS lock under CU performs best for larger numbers of
    // processors".
    let procs = 16;
    let mcs_cu = lock(LockKind::Mcs, Protocol::CompetitiveUpdate, procs).avg_latency;
    for (kind, proto) in [
        (LockKind::Ticket, Protocol::WriteInvalidate),
        (LockKind::Ticket, Protocol::PureUpdate),
        (LockKind::Ticket, Protocol::CompetitiveUpdate),
        (LockKind::Mcs, Protocol::WriteInvalidate),
        (LockKind::Mcs, Protocol::PureUpdate),
    ] {
        let other = lock(kind, proto, procs).avg_latency;
        assert!(mcs_cu <= other * 1.05, "MCS/CU ({mcs_cu}) should be best; {kind:?}/{proto:?} got {other}");
    }
}

#[test]
fn mcs_beats_ticket_under_wi_at_high_contention() {
    // The classic Mellor-Crummey & Scott result the paper builds on.
    let procs = 16;
    let tk = lock(LockKind::Ticket, Protocol::WriteInvalidate, procs).avg_latency;
    let mcs = lock(LockKind::Mcs, Protocol::WriteInvalidate, procs).avg_latency;
    assert!(mcs < tk, "MCS {mcs} < ticket {tk} under WI at P={procs}");
}

#[test]
fn mcs_update_traffic_dwarfs_ticket_update_traffic_under_pu() {
    // Section 4.1: the MCS lock "increases the amount of sharing ...
    // causing intense messaging activity (proliferation updates mostly)".
    let tk = lock(LockKind::Ticket, Protocol::PureUpdate, 16).traffic;
    let mcs = lock(LockKind::Mcs, Protocol::PureUpdate, 16).traffic;
    assert!(mcs.updates.total() > tk.updates.total());
    assert!(
        mcs.updates.proliferation > mcs.updates.useful(),
        "MCS/PU updates are mostly useless: {:?}",
        mcs.updates
    );
}

#[test]
fn update_conscious_mcs_trades_updates_for_misses() {
    // Section 4.1: the flushes cut update traffic substantially (the paper
    // reports 39%) at the cost of a large rise in (drop) misses.
    let procs = 16;
    let mcs = lock(LockKind::Mcs, Protocol::PureUpdate, procs).traffic;
    let uc = lock(LockKind::McsUpdateConscious, Protocol::PureUpdate, procs).traffic;
    assert!(
        (uc.updates.total() as f64) < 0.9 * mcs.updates.total() as f64,
        "uc updates {} vs mcs {}",
        uc.updates.total(),
        mcs.updates.total()
    );
    assert!(uc.misses.total_misses() > 5 * mcs.misses.total_misses());
    assert!(uc.misses.drop > 0, "the new misses are flush-induced drops");
}

#[test]
fn most_lock_updates_are_useless_whatever_the_lock() {
    // Section 4.1: "independently of the lock implementation, the vast
    // majority of updates under an update-based protocol is useless."
    // For the MCS lock that is overwhelming; for the ticket lock the
    // useless share is structurally bounded near half (each handoff sends
    // P−1 useful now_serving updates that every spinner consumes and P−1
    // useless next_ticket updates), so we assert "substantial" there —
    // see EXPERIMENTS.md.
    let t = lock(LockKind::Mcs, Protocol::PureUpdate, 16).traffic;
    assert!(t.updates.useless() > 2 * t.updates.useful(), "MCS: {:?}", t.updates);
    let t = lock(LockKind::Ticket, Protocol::PureUpdate, 16).traffic;
    assert!((t.updates.useless() as f64) > 0.4 * t.updates.total() as f64, "ticket: {:?}", t.updates);
}

// ---------------------------------------------------------------------
// Section 4.2 — barriers
// ---------------------------------------------------------------------

#[test]
fn scalable_barriers_prefer_update_protocols_everywhere() {
    // Figure 11: dissemination and tree barriers beat WI under PU and CU
    // for all machine sizes.
    for kind in [BarrierKind::Dissemination, BarrierKind::Tree] {
        for procs in [4usize, 8, 16] {
            let wi = barrier(kind, Protocol::WriteInvalidate, procs).avg_latency;
            let pu = barrier(kind, Protocol::PureUpdate, procs).avg_latency;
            let cu = barrier(kind, Protocol::CompetitiveUpdate, procs).avg_latency;
            assert!(pu < wi, "{kind:?} P={procs}: PU {pu} < WI {wi}");
            assert!(cu < wi, "{kind:?} P={procs}: CU {cu} < WI {wi}");
        }
    }
}

#[test]
fn dissemination_pu_and_cu_perform_equally_well() {
    // Figure 11: "for the dissemination barrier CU and PU perform equally
    // well" — because no update is ever useless, CU never drops.
    for procs in [8usize, 16] {
        let pu = barrier(BarrierKind::Dissemination, Protocol::PureUpdate, procs);
        let cu = barrier(BarrierKind::Dissemination, Protocol::CompetitiveUpdate, procs);
        let ratio = pu.avg_latency / cu.avg_latency;
        assert!((0.95..=1.05).contains(&ratio), "P={procs}: ratio {ratio}");
        assert_eq!(cu.traffic.updates.drop, 0, "nothing to drop");
    }
}

#[test]
fn dissemination_updates_are_entirely_useful() {
    // Figure 13: the dissemination barrier's update traffic has no useless
    // component at all.
    let t = barrier(BarrierKind::Dissemination, Protocol::PureUpdate, 16).traffic;
    assert!(t.updates.total() > 0);
    assert_eq!(t.updates.useless(), 0, "{:?}", t.updates);
}

#[test]
fn centralized_barrier_update_traffic_is_mostly_useless() {
    // Figure 13: "the amount of update traffic [the centralized barrier]
    // generates is substantial and mostly useless", dominated by the
    // arrival counter.
    let t = barrier(BarrierKind::Centralized, Protocol::PureUpdate, 16).traffic;
    assert!(t.updates.useless() > 3 * t.updates.useful(), "{:?}", t.updates);
}

#[test]
fn dissemination_is_the_barrier_of_choice_under_update_protocols() {
    // Section 4.2's conclusion.
    for procs in [8usize, 16] {
        let db = barrier(BarrierKind::Dissemination, Protocol::PureUpdate, procs).avg_latency;
        let cb = barrier(BarrierKind::Centralized, Protocol::PureUpdate, procs).avg_latency;
        let tb = barrier(BarrierKind::Tree, Protocol::PureUpdate, procs).avg_latency;
        assert!(db < cb && db < tb, "P={procs}: db {db} cb {cb} tb {tb}");
    }
}

#[test]
fn wi_barrier_misses_dominate_scalable_barrier_cost() {
    // Figure 12: WI pays per-episode misses on the flag arrays that the
    // update protocols eliminate entirely.
    for kind in [BarrierKind::Dissemination, BarrierKind::Tree] {
        let wi = barrier(kind, Protocol::WriteInvalidate, 16).traffic;
        let pu = barrier(kind, Protocol::PureUpdate, 16).traffic;
        assert!(wi.misses.total_misses() > 20 * pu.misses.total_misses().max(1), "{kind:?}");
    }
}

// ---------------------------------------------------------------------
// Section 4.3 — reductions
// ---------------------------------------------------------------------

#[test]
fn parallel_reduction_wins_under_wi() {
    // Figure 14: "under the WI protocol, parallel reduction outperforms
    // its sequential counterpart."
    for procs in [8usize, 16] {
        let pr = reduction(ReductionKind::Parallel, Protocol::WriteInvalidate, procs).avg_latency;
        let sr = reduction(ReductionKind::Sequential, Protocol::WriteInvalidate, procs).avg_latency;
        assert!(pr < sr, "P={procs}: parallel {pr} < sequential {sr} under WI");
    }
}

#[test]
fn sequential_reduction_wins_under_update_protocols() {
    // Figure 14: "for update-based protocols sequential reduction is the
    // ideal strategy."
    for protocol in [Protocol::PureUpdate, Protocol::CompetitiveUpdate] {
        let pr = reduction(ReductionKind::Parallel, protocol, 16).avg_latency;
        let sr = reduction(ReductionKind::Sequential, protocol, 16).avg_latency;
        assert!(sr < pr, "{protocol:?}: sequential {sr} < parallel {pr}");
    }
}

#[test]
fn update_sequential_beats_wi_parallel_overall() {
    // Section 4.3: "update-based sequential reductions always exhibit
    // better performance than parallel reductions under WI."
    for procs in [8usize, 16] {
        let sr_u = reduction(ReductionKind::Sequential, Protocol::PureUpdate, procs).avg_latency;
        let pr_i = reduction(ReductionKind::Parallel, Protocol::WriteInvalidate, procs).avg_latency;
        assert!(sr_u < pr_i, "P={procs}: sr/PU {sr_u} < pr/WI {pr_i}");
    }
}

#[test]
fn reduction_updates_are_largely_useful() {
    // Figure 16: "both parallel and sequential reductions exhibit a large
    // percentage of useful updates."
    for kind in [ReductionKind::Sequential, ReductionKind::Parallel] {
        let t = reduction(kind, Protocol::PureUpdate, 16).traffic;
        if t.updates.total() > 0 {
            assert!(t.updates.useful() * 2 >= t.updates.total(), "{kind:?}: {:?}", t.updates);
        }
    }
}

#[test]
fn imbalance_helps_parallel_reductions() {
    // Section 4.3's modified experiment: load imbalance reduces lock
    // contention, and parallel reductions close the gap (or win) — while
    // update-based parallel still beats WI parallel.
    let skewed = |kind, protocol| {
        run_experiment(&ExperimentSpec {
            procs: 16,
            protocol,
            kernel: KernelSpec::Reduction(ReductionWorkload { kind, episodes: 150, skew: 1500 }),
        })
        .avg_latency
    };
    let pr_u = skewed(ReductionKind::Parallel, Protocol::PureUpdate);
    let pr_i = skewed(ReductionKind::Parallel, Protocol::WriteInvalidate);
    assert!(pr_u < pr_i, "parallel/PU {pr_u} < parallel/WI {pr_i} under imbalance");

    // And the parallel-vs-sequential gap shrinks versus the tight case.
    let tight_gap = reduction(ReductionKind::Parallel, Protocol::PureUpdate, 16).avg_latency
        - reduction(ReductionKind::Sequential, Protocol::PureUpdate, 16).avg_latency;
    let skewed_gap = skewed(ReductionKind::Parallel, Protocol::PureUpdate)
        - skewed(ReductionKind::Sequential, Protocol::PureUpdate);
    assert!(
        skewed_gap < tight_gap,
        "imbalance shrinks the parallel deficit: tight {tight_gap} vs skewed {skewed_gap}"
    );
}

//! Cross-crate integration tests: whole-machine runs of every kernel under
//! every protocol, checking functional postconditions, coherence
//! invariants, and determinism.

use kernels::runner::{run_experiment, ExperimentSpec, KernelSpec};
use kernels::workloads::{
    BarrierKind, BarrierWorkload, LockKind, LockWorkload, PostRelease, ReductionKind, ReductionWorkload,
};
use kernels::{barriers, locks, reductions};
use sim_machine::{Machine, MachineConfig};
use sim_proto::Protocol;

const PROTOCOLS: [Protocol; 3] =
    [Protocol::WriteInvalidate, Protocol::PureUpdate, Protocol::CompetitiveUpdate];

fn lock_w(kind: LockKind, total: u32) -> LockWorkload {
    LockWorkload { kind, total_acquires: total, cs_cycles: 20, post_release: PostRelease::None }
}

#[test]
fn every_lock_is_coherent_after_running() {
    for kind in [LockKind::Ticket, LockKind::Mcs, LockKind::McsUpdateConscious] {
        for protocol in PROTOCOLS {
            for procs in [2usize, 5, 8] {
                let w = lock_w(kind, 120);
                let mut m = Machine::new(MachineConfig::paper(procs, protocol));
                let layout = locks::install(&mut m, &w);
                m.run();
                locks::verify(&mut m, &w, &layout);
                m.assert_coherent();
            }
        }
    }
}

#[test]
fn every_barrier_is_coherent_after_running() {
    for kind in [BarrierKind::Centralized, BarrierKind::Dissemination, BarrierKind::Tree] {
        for protocol in PROTOCOLS {
            for procs in [2usize, 5, 8] {
                let w = BarrierWorkload { kind, episodes: 25 };
                let mut m = Machine::new(MachineConfig::paper(procs, protocol));
                let layout = barriers::install(&mut m, &w);
                m.run();
                barriers::verify(&mut m, &w, &layout);
                m.assert_coherent();
            }
        }
    }
}

#[test]
fn every_reduction_is_coherent_after_running() {
    for kind in [ReductionKind::Parallel, ReductionKind::Sequential] {
        for protocol in PROTOCOLS {
            for procs in [2usize, 5, 8] {
                let w = ReductionWorkload { kind, episodes: 12, skew: 0 };
                let mut m = Machine::new(MachineConfig::paper(procs, protocol));
                let layout = reductions::install(&mut m, &w);
                m.run();
                reductions::verify(&mut m, &w, &layout);
                m.assert_coherent();
            }
        }
    }
}

#[test]
fn runs_are_deterministic() {
    // Identical specs produce bit-identical measurements, including under
    // the randomized workload variants (the PRNG is seeded).
    let spec = ExperimentSpec {
        procs: 8,
        protocol: Protocol::CompetitiveUpdate,
        kernel: KernelSpec::Lock(LockWorkload {
            kind: LockKind::Mcs,
            total_acquires: 160,
            cs_cycles: 20,
            post_release: PostRelease::Random { bound: 64 },
        }),
    };
    let a = run_experiment(&spec);
    let b = run_experiment(&spec);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.traffic.misses, b.traffic.misses);
    assert_eq!(a.traffic.updates, b.traffic.updates);
    assert_eq!(a.net.messages, b.net.messages);
    assert_eq!(a.net.flits, b.net.flits);
}

#[test]
fn invalidate_protocol_generates_no_updates_ever() {
    for kernel in [
        KernelSpec::Lock(lock_w(LockKind::Ticket, 96)),
        KernelSpec::Barrier(BarrierWorkload { kind: BarrierKind::Dissemination, episodes: 20 }),
        KernelSpec::Reduction(ReductionWorkload { kind: ReductionKind::Parallel, episodes: 8, skew: 0 }),
    ] {
        let out = run_experiment(&ExperimentSpec { procs: 8, protocol: Protocol::WriteInvalidate, kernel });
        assert_eq!(out.traffic.updates.total(), 0);
    }
}

#[test]
fn update_protocols_generate_no_upgrade_requests() {
    // Exclusive (upgrade) requests are a WI concept; write-through update
    // protocols never issue them.
    for protocol in [Protocol::PureUpdate, Protocol::CompetitiveUpdate] {
        let out = run_experiment(&ExperimentSpec {
            procs: 8,
            protocol,
            kernel: KernelSpec::Lock(lock_w(LockKind::Ticket, 96)),
        });
        assert_eq!(out.traffic.misses.exclusive_requests, 0, "{protocol:?}");
    }
}

#[test]
fn pure_update_never_drops() {
    let out = run_experiment(&ExperimentSpec {
        procs: 8,
        protocol: Protocol::PureUpdate,
        kernel: KernelSpec::Lock(lock_w(LockKind::Mcs, 160)),
    });
    assert_eq!(out.traffic.updates.drop, 0);
    assert_eq!(out.traffic.misses.drop, 0, "PU never self-invalidates (no flushes here)");
}

#[test]
fn competitive_update_drops_under_useless_traffic() {
    // The MCS lock showers stale sharers with updates; CU must cut them
    // off at the threshold.
    let out = run_experiment(&ExperimentSpec {
        procs: 8,
        protocol: Protocol::CompetitiveUpdate,
        kernel: KernelSpec::Lock(lock_w(LockKind::Mcs, 320)),
    });
    assert!(out.traffic.updates.drop > 0, "drop updates observed");
    assert!(out.traffic.misses.drop > 0, "drop misses observed");
}

#[test]
fn replacement_updates_never_observed_in_paper_workloads() {
    // Footnote 1 of the paper: the replacement-update category never
    // occurs in these synthetic programs (their working sets fit easily).
    for kernel in [
        KernelSpec::Lock(lock_w(LockKind::Mcs, 160)),
        KernelSpec::Barrier(BarrierWorkload { kind: BarrierKind::Tree, episodes: 20 }),
        KernelSpec::Reduction(ReductionWorkload { kind: ReductionKind::Sequential, episodes: 10, skew: 0 }),
    ] {
        for protocol in [Protocol::PureUpdate, Protocol::CompetitiveUpdate] {
            let out = run_experiment(&ExperimentSpec { procs: 8, protocol, kernel });
            assert_eq!(out.traffic.updates.replacement, 0);
            assert_eq!(out.traffic.misses.eviction, 0);
        }
    }
}

#[test]
fn lock_latency_grows_with_contention_under_wi() {
    let latency = |procs| {
        run_experiment(&ExperimentSpec {
            procs,
            protocol: Protocol::WriteInvalidate,
            kernel: KernelSpec::Lock(lock_w(LockKind::Ticket, 256)),
        })
        .avg_latency
    };
    let (l2, l16) = (latency(2), latency(16));
    assert!(l16 > l2 * 2.0, "ticket/WI latency must grow with P: {l2} -> {l16}");
}

#[test]
fn network_messages_scale_with_work() {
    let msgs = |total| {
        run_experiment(&ExperimentSpec {
            procs: 4,
            protocol: Protocol::PureUpdate,
            kernel: KernelSpec::Lock(lock_w(LockKind::Ticket, total)),
        })
        .net
        .messages
    };
    let (small, large) = (msgs(64), msgs(256));
    assert!(large > small * 2, "4x the acquires must produce >2x the messages");
}

//! Differential-observability closure properties.
//!
//! The single-run instruments reconcile to exact closure; `ReportDelta`
//! must carry that discipline over to pairs of runs:
//!
//! * for random seeded run pairs across WI/PU/CU, every section's deltas
//!   sum to that section's total-cycle delta (the crit chain's class
//!   deltas sum *exactly* to the wall-clock delta);
//! * a run diffed against an identical re-run is all-zeros with
//!   `first_divergence == None` (the fingerprint chains are identical).
//!
//! Workload sizes are built directly (small, fixed) so the tests do not
//! depend on `PPC_SCALE`.

use kernels::runner::KernelSpec;
use kernels::workloads::{
    BarrierKind, BarrierWorkload, LockKind, LockWorkload, ReductionKind, ReductionWorkload,
};
use ppc_bench::diff::{checked_delta, run_diff};
use ppc_bench::PROTOCOLS;
use sim_engine::SplitMix64;
use sim_stats::FingerprintCompare;

/// Draws a small kernel workload (kind and iteration count randomized).
fn random_kernel(rng: &mut SplitMix64) -> KernelSpec {
    match rng.next_below(3) {
        0 => {
            let kind =
                [LockKind::Ticket, LockKind::Mcs, LockKind::McsUpdateConscious][rng.next_below(3) as usize];
            KernelSpec::Lock(LockWorkload {
                total_acquires: rng.next_range(80, 240) as u32,
                ..LockWorkload::paper(kind)
            })
        }
        1 => {
            let kind = [BarrierKind::Centralized, BarrierKind::Dissemination, BarrierKind::Tree]
                [rng.next_below(3) as usize];
            KernelSpec::Barrier(BarrierWorkload {
                episodes: rng.next_range(20, 60) as u32,
                ..BarrierWorkload::paper(kind)
            })
        }
        _ => {
            let kind = [ReductionKind::Sequential, ReductionKind::Parallel][rng.next_below(2) as usize];
            KernelSpec::Reduction(ReductionWorkload {
                episodes: rng.next_range(20, 60) as u32,
                ..ReductionWorkload::paper(kind)
            })
        }
    }
}

#[test]
fn random_seeded_pairs_close_to_the_total_cycle_delta() {
    let mut rng = SplitMix64::new(0xd1ff_c105);
    for case in 0..6 {
        let kernel = random_kernel(&mut rng);
        let procs = [2usize, 4, 8][rng.next_below(3) as usize];
        let proto_a = PROTOCOLS[rng.next_below(3) as usize];
        let proto_b = PROTOCOLS[rng.next_below(3) as usize];
        let a = run_diff(procs, proto_a, &kernel);
        let b = run_diff(procs, proto_b, &kernel);
        // checked_delta panics if any closure equation fails.
        let delta = checked_delta(&a, "A", &b, "B");
        // The headline equation, asserted explicitly as well: the crit
        // chain's class deltas sum to the wall-clock (total-cycle) delta.
        let crit = delta.crit.as_ref().expect("observed runs carry the crit section");
        let chain_sum: i64 = crit.chain_classes.values().map(|c| c.delta()).sum();
        assert_eq!(
            chain_sum,
            delta.wall.delta(),
            "case {case} ({kernel:?}, {procs} procs): chain deltas != wall delta"
        );
        // And the stall-class deltas sum to the node-cycle delta.
        let class_sum: i64 = delta.classes.values().map(|c| c.delta()).sum();
        let node_delta = (delta.procs.b * delta.wall.b) as i64 - (delta.procs.a * delta.wall.a) as i64;
        assert_eq!(class_sum, node_delta, "case {case}: class deltas != node-cycle delta");
        // Sides with hostobs on always compare fingerprints.
        assert_ne!(delta.fingerprint, FingerprintCompare::Absent, "case {case}");
    }
}

#[test]
fn self_diff_is_all_zeros_with_no_divergence() {
    let mut rng = SplitMix64::new(0xd1ff_5e1f);
    for protocol in PROTOCOLS {
        let kernel = random_kernel(&mut rng);
        let procs = [2usize, 4][rng.next_below(2) as usize];
        // Two *separate* runs of the same spec: determinism makes the
        // diff empty and the fingerprint chains identical.
        let a = run_diff(procs, protocol, &kernel);
        let b = run_diff(procs, protocol, &kernel);
        let delta = checked_delta(&a, "run1", &b, "run2");
        assert!(delta.is_zero(), "{kernel:?} under {protocol:?}: re-run diff must be empty");
        assert_eq!(
            delta.fingerprint,
            FingerprintCompare::Identical,
            "{kernel:?} under {protocol:?}: first_divergence must be None"
        );
        assert!(delta.attribution(16).is_empty(), "no cycles moved, nothing to attribute");
    }
}

//! Ablation A5: spin parking is a simulator fast-forward, not a model
//! change. With parking on, a quiescent spinner sleeps until a coherence
//! event touches its watched line and then re-checks on its original
//! period grid; with parking off, it re-checks every period. The observed
//! machine behavior must match: identical functional results, identical
//! protocol traffic up to the spin re-reads themselves, and cycle counts
//! within a tight tolerance (a woken spinner can observe a flip at most
//! one re-check earlier/later than a polling one).

use kernels::workloads::{
    BarrierKind, BarrierWorkload, LockKind, LockWorkload, PostRelease, ReductionKind, ReductionWorkload,
};
use kernels::{barriers, locks, reductions};
use sim_machine::{Machine, MachineConfig, RunResult};
use sim_proto::Protocol;

fn run_lock(parking: bool, protocol: Protocol) -> (RunResult, u32) {
    let w = LockWorkload {
        kind: LockKind::Mcs,
        total_acquires: 240,
        cs_cycles: 30,
        post_release: PostRelease::None,
    };
    let mut cfg = MachineConfig::paper(8, protocol);
    cfg.spin_parking = parking;
    let mut m = Machine::new(cfg);
    let layout = locks::install(&mut m, &w);
    let r = m.run();
    locks::verify(&mut m, &w, &layout);
    let tail = m.read_word(layout.tail);
    (r, tail)
}

fn assert_close(a: u64, b: u64, tolerance: f64, what: &str) {
    let (a, b) = (a as f64, b as f64);
    let rel = (a - b).abs() / a.max(b).max(1.0);
    assert!(rel <= tolerance, "{what}: parked {a} vs naive {b} ({:.2}% apart)", rel * 100.0);
}

#[test]
fn lock_results_match_with_and_without_parking() {
    for protocol in [Protocol::WriteInvalidate, Protocol::PureUpdate, Protocol::CompetitiveUpdate] {
        let (parked, tail_p) = run_lock(true, protocol);
        let (naive, tail_n) = run_lock(false, protocol);
        assert_eq!(tail_p, tail_n, "{protocol:?}: functional state");
        assert_close(parked.cycles, naive.cycles, 0.03, "cycles");
        // Structural traffic (fills, invalidations, updates) is identical;
        // only the spin re-read *count* may differ.
        assert_eq!(parked.traffic.misses, naive.traffic.misses, "{protocol:?}: miss classification");
        assert_eq!(
            parked.traffic.updates.total(),
            naive.traffic.updates.total(),
            "{protocol:?}: update volume"
        );
        assert_eq!(parked.net.messages, naive.net.messages, "{protocol:?}: messages");
    }
}

#[test]
fn barrier_results_match_with_and_without_parking() {
    for kind in [BarrierKind::Centralized, BarrierKind::Dissemination, BarrierKind::Tree] {
        let w = BarrierWorkload { kind, episodes: 40 };
        let mut outs = Vec::new();
        for parking in [true, false] {
            let mut cfg = MachineConfig::paper(8, Protocol::PureUpdate);
            cfg.spin_parking = parking;
            let mut m = Machine::new(cfg);
            let layout = barriers::install(&mut m, &w);
            let r = m.run();
            barriers::verify(&mut m, &w, &layout);
            outs.push(r);
        }
        assert_close(outs[0].cycles, outs[1].cycles, 0.03, &format!("{kind:?} cycles"));
        assert_eq!(outs[0].net.messages, outs[1].net.messages, "{kind:?} messages");
    }
}

#[test]
fn reduction_results_match_with_and_without_parking() {
    // Reductions barely spin (magic sync), so this pins the no-op case:
    // parking must not perturb a program without busy-waiting.
    for kind in [ReductionKind::Parallel, ReductionKind::Sequential] {
        let w = ReductionWorkload { kind, episodes: 20, skew: 0 };
        let mut cycles = Vec::new();
        for parking in [true, false] {
            let mut cfg = MachineConfig::paper(8, Protocol::CompetitiveUpdate);
            cfg.spin_parking = parking;
            let mut m = Machine::new(cfg);
            let layout = reductions::install(&mut m, &w);
            let r = m.run();
            reductions::verify(&mut m, &w, &layout);
            cycles.push(r.cycles);
        }
        assert_eq!(cycles[0], cycles[1], "{kind:?}: no spinning, no difference");
    }
}

//! Property-based differential testing: random programs whose final
//! shared-memory state is schedule-independent must produce *identical*
//! results on the cycle-accurate machine (under every protocol) and on the
//! timing-free sequentially-consistent reference executor.
//!
//! Schedule independence is guaranteed by construction: cross-processor
//! mutation happens only through commutative `fetch_and_add`s, and plain
//! stores target per-processor slots no one else writes.

use sim_engine::SplitMix64;
use sim_isa::reference::RefMachine;
use sim_isa::{AluOp, Program, ProgramBuilder};
use sim_machine::{Machine, MachineConfig};
use sim_proto::Protocol;

/// One random operation in a generated program.
#[derive(Debug, Clone)]
enum Op {
    /// `counters[idx] += amount` (atomic, commutative).
    Add { idx: usize, amount: u32 },
    /// `my_slots[slot] = val` (only this processor writes it).
    StoreMine { slot: usize, val: u32 },
    /// Read a counter (no effect on the final state).
    LoadCounter { idx: usize },
    /// Local work.
    Work { cycles: u32 },
}

const COUNTERS: usize = 3;
const SLOTS: usize = 2;

/// Draws one random operation from the same distribution the proptest
/// strategy used (uniform over the four op shapes).
fn random_op(rng: &mut SplitMix64) -> Op {
    match rng.next_below(4) {
        0 => Op::Add { idx: rng.next_below(COUNTERS as u64) as usize, amount: rng.next_range(1, 99) as u32 },
        1 => Op::StoreMine { slot: rng.next_below(SLOTS as u64) as usize, val: rng.next_below(1000) as u32 },
        2 => Op::LoadCounter { idx: rng.next_below(COUNTERS as u64) as usize },
        _ => Op::Work { cycles: rng.next_range(1, 39) as u32 },
    }
}

/// Generates 2–3 processors' worth of 0–23 random ops each.
fn random_case(rng: &mut SplitMix64) -> Vec<Vec<Op>> {
    let cpus = rng.next_range(2, 3) as usize;
    (0..cpus)
        .map(|_| {
            let n = rng.next_below(24) as usize;
            (0..n).map(|_| random_op(rng)).collect()
        })
        .collect()
}

fn build_program(ops: &[Op], counters: &[u32], my_slots: &[u32]) -> Program {
    let mut b = ProgramBuilder::new();
    for op in ops {
        match *op {
            Op::Add { idx, amount } => {
                b.imm(0, counters[idx]);
                b.imm(1, amount);
                b.fetch_add(2, 0, 1);
            }
            Op::StoreMine { slot, val } => {
                b.imm(0, my_slots[slot]);
                b.imm(1, val);
                b.store(0, 0, 1);
            }
            Op::LoadCounter { idx } => {
                b.imm(0, counters[idx]);
                b.load(3, 0, 0);
                // Fold the loaded value so the read is not dead code.
                b.alu(AluOp::Xor, 4, 4, 3);
            }
            Op::Work { cycles } => {
                b.delay(cycles);
            }
        }
    }
    b.fence();
    b.halt();
    b.build()
}

/// Expected final value of each counter and slot, computed directly.
fn expected_state(per_cpu_ops: &[Vec<Op>]) -> (Vec<u32>, Vec<Vec<Option<u32>>>) {
    let mut counters = vec![0u32; COUNTERS];
    let mut slots = vec![vec![None; SLOTS]; per_cpu_ops.len()];
    for (cpu, ops) in per_cpu_ops.iter().enumerate() {
        for op in ops {
            match *op {
                Op::Add { idx, amount } => counters[idx] = counters[idx].wrapping_add(amount),
                Op::StoreMine { slot, val } => slots[cpu][slot] = Some(val),
                _ => {}
            }
        }
    }
    (counters, slots)
}

fn run_case(per_cpu_ops: &[Vec<Op>], protocol: Protocol) {
    let cpus = per_cpu_ops.len();
    let mut m = Machine::new(MachineConfig::paper(cpus, protocol));
    let counter_addrs: Vec<u32> = (0..COUNTERS).map(|i| m.alloc().alloc_block_on(i % cpus, 1)).collect();
    let slot_addrs: Vec<Vec<u32>> =
        (0..cpus).map(|c| (0..SLOTS).map(|_| m.alloc().alloc_block_on(c, 1)).collect()).collect();
    for (cpu, ops) in per_cpu_ops.iter().enumerate() {
        m.set_program(cpu, build_program(ops, &counter_addrs, &slot_addrs[cpu]));
    }
    let r = m.run();
    m.assert_coherent();
    assert!(r.cycles > 0 || per_cpu_ops.iter().all(|o| o.is_empty()));

    // Against direct computation.
    let (exp_counters, exp_slots) = expected_state(per_cpu_ops);
    for (i, &a) in counter_addrs.iter().enumerate() {
        assert_eq!(m.read_word(a), exp_counters[i], "{protocol:?} counter {i}");
    }
    for (cpu, slots) in exp_slots.iter().enumerate() {
        for (s, v) in slots.iter().enumerate() {
            if let Some(v) = v {
                assert_eq!(m.read_word(slot_addrs[cpu][s]), *v, "{protocol:?} cpu {cpu} slot {s}");
            }
        }
    }

    // Against the reference executor (same programs, same addresses).
    let progs: Vec<Program> = per_cpu_ops
        .iter()
        .enumerate()
        .map(|(cpu, ops)| build_program(ops, &counter_addrs, &slot_addrs[cpu]))
        .collect();
    let reference = RefMachine::new(progs, 7).run(10_000_000);
    assert!(reference.all_halted);
    for (i, &a) in counter_addrs.iter().enumerate() {
        assert_eq!(reference.word(a), exp_counters[i], "reference counter {i}");
    }
}

/// Runs one random case on the serial core and on the sharded PDES core
/// at every shard count, asserting the full result — cycles, classified
/// traffic, network counters, instruction count, and the final
/// shared-memory words — is identical. The shard counts sweep the edge
/// cases: an even split, one where shard blocks hold a single node, and
/// one *above* the processor count (which must clamp, not break).
fn run_case_shard_invariant(per_cpu_ops: &[Vec<Op>], protocol: Protocol) {
    let cpus = per_cpu_ops.len();
    let mut outcomes = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let mut m = Machine::new(MachineConfig::paper(cpus, protocol).with_shards(shards));
        let counter_addrs: Vec<u32> = (0..COUNTERS).map(|i| m.alloc().alloc_block_on(i % cpus, 1)).collect();
        let slot_addrs: Vec<Vec<u32>> =
            (0..cpus).map(|c| (0..SLOTS).map(|_| m.alloc().alloc_block_on(c, 1)).collect()).collect();
        for (cpu, ops) in per_cpu_ops.iter().enumerate() {
            m.set_program(cpu, build_program(ops, &counter_addrs, &slot_addrs[cpu]));
        }
        let r = m.run();
        m.assert_coherent();
        let words: Vec<u32> =
            counter_addrs.iter().chain(slot_addrs.iter().flatten()).map(|&a| m.read_word(a)).collect();
        outcomes.push((
            shards,
            format!("{:?} {:?} {:?} {} {words:?}", r.cycles, r.traffic, r.net, r.instructions),
        ));
    }
    let (_, reference) = &outcomes[0];
    for (shards, got) in &outcomes[1..] {
        assert_eq!(got, reference, "{protocol:?}: {shards} shards diverged from serial");
    }
}

#[test]
fn pdes_core_is_shard_count_invariant() {
    // 2–3 CPUs under every shard count up to 8: every multi-shard run has
    // single-node shards, and shards=8 exceeds the node count.
    let mut rng = SplitMix64::new(0xd1ff_5a4d);
    for i in 0..9 {
        let case = random_case(&mut rng);
        run_case_shard_invariant(&case, PROTOCOLS[i % 3]);
    }
}

const PROTOCOLS: [Protocol; 3] =
    [Protocol::WriteInvalidate, Protocol::PureUpdate, Protocol::CompetitiveUpdate];

#[test]
fn machine_matches_oracle_under_wi() {
    let mut rng = SplitMix64::new(0xd1ff_0001);
    for _ in 0..24 {
        run_case(&random_case(&mut rng), Protocol::WriteInvalidate);
    }
}

#[test]
fn machine_matches_oracle_under_pu() {
    let mut rng = SplitMix64::new(0xd1ff_0002);
    for _ in 0..24 {
        run_case(&random_case(&mut rng), Protocol::PureUpdate);
    }
}

#[test]
fn machine_matches_oracle_under_cu() {
    let mut rng = SplitMix64::new(0xd1ff_0003);
    for _ in 0..24 {
        run_case(&random_case(&mut rng), Protocol::CompetitiveUpdate);
    }
}

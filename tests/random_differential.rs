//! Property-based differential testing: random programs whose final
//! shared-memory state is schedule-independent must produce *identical*
//! results on the cycle-accurate machine (under every protocol) and on the
//! timing-free sequentially-consistent reference executor.
//!
//! Schedule independence is guaranteed by construction: cross-processor
//! mutation happens only through commutative `fetch_and_add`s, and plain
//! stores target per-processor slots no one else writes.

use sim_engine::SplitMix64;
use sim_isa::reference::RefMachine;
use sim_isa::{AluOp, Program, ProgramBuilder};
use sim_machine::{Machine, MachineConfig};
use sim_proto::Protocol;

/// One random operation in a generated program.
#[derive(Debug, Clone)]
enum Op {
    /// `counters[idx] += amount` (atomic, commutative).
    Add { idx: usize, amount: u32 },
    /// `my_slots[slot] = val` (only this processor writes it).
    StoreMine { slot: usize, val: u32 },
    /// Read a counter (no effect on the final state).
    LoadCounter { idx: usize },
    /// Local work.
    Work { cycles: u32 },
}

const COUNTERS: usize = 3;
const SLOTS: usize = 2;

/// Draws one random operation from the same distribution the proptest
/// strategy used (uniform over the four op shapes).
fn random_op(rng: &mut SplitMix64) -> Op {
    match rng.next_below(4) {
        0 => Op::Add { idx: rng.next_below(COUNTERS as u64) as usize, amount: rng.next_range(1, 99) as u32 },
        1 => Op::StoreMine { slot: rng.next_below(SLOTS as u64) as usize, val: rng.next_below(1000) as u32 },
        2 => Op::LoadCounter { idx: rng.next_below(COUNTERS as u64) as usize },
        _ => Op::Work { cycles: rng.next_range(1, 39) as u32 },
    }
}

/// Generates 2–3 processors' worth of 0–23 random ops each.
fn random_case(rng: &mut SplitMix64) -> Vec<Vec<Op>> {
    let cpus = rng.next_range(2, 3) as usize;
    (0..cpus)
        .map(|_| {
            let n = rng.next_below(24) as usize;
            (0..n).map(|_| random_op(rng)).collect()
        })
        .collect()
}

fn build_program(ops: &[Op], counters: &[u32], my_slots: &[u32]) -> Program {
    let mut b = ProgramBuilder::new();
    for op in ops {
        match *op {
            Op::Add { idx, amount } => {
                b.imm(0, counters[idx]);
                b.imm(1, amount);
                b.fetch_add(2, 0, 1);
            }
            Op::StoreMine { slot, val } => {
                b.imm(0, my_slots[slot]);
                b.imm(1, val);
                b.store(0, 0, 1);
            }
            Op::LoadCounter { idx } => {
                b.imm(0, counters[idx]);
                b.load(3, 0, 0);
                // Fold the loaded value so the read is not dead code.
                b.alu(AluOp::Xor, 4, 4, 3);
            }
            Op::Work { cycles } => {
                b.delay(cycles);
            }
        }
    }
    b.fence();
    b.halt();
    b.build()
}

/// Expected final value of each counter and slot, computed directly.
fn expected_state(per_cpu_ops: &[Vec<Op>]) -> (Vec<u32>, Vec<Vec<Option<u32>>>) {
    let mut counters = vec![0u32; COUNTERS];
    let mut slots = vec![vec![None; SLOTS]; per_cpu_ops.len()];
    for (cpu, ops) in per_cpu_ops.iter().enumerate() {
        for op in ops {
            match *op {
                Op::Add { idx, amount } => counters[idx] = counters[idx].wrapping_add(amount),
                Op::StoreMine { slot, val } => slots[cpu][slot] = Some(val),
                _ => {}
            }
        }
    }
    (counters, slots)
}

fn run_case(per_cpu_ops: &[Vec<Op>], protocol: Protocol) {
    let cpus = per_cpu_ops.len();
    let mut m = Machine::new(MachineConfig::paper(cpus, protocol));
    let counter_addrs: Vec<u32> = (0..COUNTERS).map(|i| m.alloc().alloc_block_on(i % cpus, 1)).collect();
    let slot_addrs: Vec<Vec<u32>> =
        (0..cpus).map(|c| (0..SLOTS).map(|_| m.alloc().alloc_block_on(c, 1)).collect()).collect();
    for (cpu, ops) in per_cpu_ops.iter().enumerate() {
        m.set_program(cpu, build_program(ops, &counter_addrs, &slot_addrs[cpu]));
    }
    let r = m.run();
    m.assert_coherent();
    assert!(r.cycles > 0 || per_cpu_ops.iter().all(|o| o.is_empty()));

    // Against direct computation.
    let (exp_counters, exp_slots) = expected_state(per_cpu_ops);
    for (i, &a) in counter_addrs.iter().enumerate() {
        assert_eq!(m.read_word(a), exp_counters[i], "{protocol:?} counter {i}");
    }
    for (cpu, slots) in exp_slots.iter().enumerate() {
        for (s, v) in slots.iter().enumerate() {
            if let Some(v) = v {
                assert_eq!(m.read_word(slot_addrs[cpu][s]), *v, "{protocol:?} cpu {cpu} slot {s}");
            }
        }
    }

    // Against the reference executor (same programs, same addresses).
    let progs: Vec<Program> = per_cpu_ops
        .iter()
        .enumerate()
        .map(|(cpu, ops)| build_program(ops, &counter_addrs, &slot_addrs[cpu]))
        .collect();
    let reference = RefMachine::new(progs, 7).run(10_000_000);
    assert!(reference.all_halted);
    for (i, &a) in counter_addrs.iter().enumerate() {
        assert_eq!(reference.word(a), exp_counters[i], "reference counter {i}");
    }
}

/// Runs one random case on the serial core and on the sharded PDES core
/// at every shard count, asserting the full result — cycles, classified
/// traffic, network counters, instruction count, and the final
/// shared-memory words — is identical. The shard counts sweep the edge
/// cases: an even split, one where shard blocks hold a single node, and
/// one *above* the processor count (which must clamp, not break).
fn run_case_shard_invariant(per_cpu_ops: &[Vec<Op>], protocol: Protocol) {
    let cpus = per_cpu_ops.len();
    let mut outcomes = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let mut m = Machine::new(MachineConfig::paper(cpus, protocol).with_shards(shards));
        let counter_addrs: Vec<u32> = (0..COUNTERS).map(|i| m.alloc().alloc_block_on(i % cpus, 1)).collect();
        let slot_addrs: Vec<Vec<u32>> =
            (0..cpus).map(|c| (0..SLOTS).map(|_| m.alloc().alloc_block_on(c, 1)).collect()).collect();
        for (cpu, ops) in per_cpu_ops.iter().enumerate() {
            m.set_program(cpu, build_program(ops, &counter_addrs, &slot_addrs[cpu]));
        }
        let r = m.run();
        m.assert_coherent();
        let words: Vec<u32> =
            counter_addrs.iter().chain(slot_addrs.iter().flatten()).map(|&a| m.read_word(a)).collect();
        outcomes.push((
            shards,
            format!("{:?} {:?} {:?} {} {words:?}", r.cycles, r.traffic, r.net, r.instructions),
        ));
    }
    let (_, reference) = &outcomes[0];
    for (shards, got) in &outcomes[1..] {
        assert_eq!(got, reference, "{protocol:?}: {shards} shards diverged from serial");
    }
}

#[test]
fn pdes_core_is_shard_count_invariant() {
    // 2–3 CPUs under every shard count up to 8: every multi-shard run has
    // single-node shards, and shards=8 exceeds the node count.
    let mut rng = SplitMix64::new(0xd1ff_5a4d);
    for i in 0..9 {
        let case = random_case(&mut rng);
        run_case_shard_invariant(&case, PROTOCOLS[i % 3]);
    }
}

const PROTOCOLS: [Protocol; 3] =
    [Protocol::WriteInvalidate, Protocol::PureUpdate, Protocol::CompetitiveUpdate];

/// Builds the machine for `per_cpu_ops` (same allocation order and
/// programs every call, so snapshots restore across instances), returning
/// it with the list of observable shared addresses.
fn build_case_machine(
    per_cpu_ops: &[Vec<Op>],
    protocol: Protocol,
    shards: usize,
    checkpoint_every: Option<u64>,
) -> (Machine, Vec<u32>) {
    let cpus = per_cpu_ops.len();
    let mut cfg = MachineConfig::paper(cpus, protocol).with_shards(shards);
    // A tiny epoch keeps the epoch-aligned checkpoint grid fine enough
    // for these short random programs.
    cfg.hostobs.fingerprint_epoch = 32;
    cfg.checkpoint_every = checkpoint_every;
    let mut m = Machine::new(cfg);
    let counter_addrs: Vec<u32> = (0..COUNTERS).map(|i| m.alloc().alloc_block_on(i % cpus, 1)).collect();
    let slot_addrs: Vec<Vec<u32>> =
        (0..cpus).map(|c| (0..SLOTS).map(|_| m.alloc().alloc_block_on(c, 1)).collect()).collect();
    for (cpu, ops) in per_cpu_ops.iter().enumerate() {
        m.set_program(cpu, build_program(ops, &counter_addrs, &slot_addrs[cpu]));
    }
    let addrs = counter_addrs.into_iter().chain(slot_addrs.into_iter().flatten()).collect();
    (m, addrs)
}

/// Full observable outcome of a finished machine: figures + final memory.
fn outcome(r: &sim_machine::RunResult, m: &mut Machine, addrs: &[u32]) -> String {
    let words: Vec<u32> = addrs.iter().map(|&a| m.read_word(a)).collect();
    format!("{:?} {:?} {:?} {} {words:?}", r.cycles, r.traffic, r.net, r.instructions)
}

/// Snapshot→restore round trip on a random program: when the run is long
/// enough to cross a checkpoint boundary, restoring the deepest mid-run
/// checkpoint must replay to the exact figures and final memory of an
/// uninterrupted run. Returns whether a checkpoint fired (restores are
/// only possible from mid-run snapshots — a machine restored before any
/// event was queued would have nothing to dispatch).
fn run_case_round_trip(per_cpu_ops: &[Vec<Op>], protocol: Protocol, shards: usize) -> bool {
    let (mut full_m, addrs) = build_case_machine(per_cpu_ops, protocol, shards, None);
    let full_r = full_m.run();
    full_m.assert_coherent();
    let full = outcome(&full_r, &mut full_m, &addrs);

    let (mut ck_m, _) = build_case_machine(per_cpu_ops, protocol, shards, Some(32));
    let ck_r = ck_m.run();
    assert_eq!(outcome(&ck_r, &mut ck_m, &addrs), full, "{protocol:?}/{shards}: checkpointing perturbed");
    let Some(ck) = ck_m.take_checkpoints().pop() else { return false };
    let (mut m, _) = build_case_machine(per_cpu_ops, protocol, shards, None);
    m.restore(&ck.blob).expect("checkpoint restores");
    let r = m.run();
    assert_eq!(
        outcome(&r, &mut m, &addrs),
        full,
        "{protocol:?}/{shards}: restore at event {} diverged",
        ck.events
    );
    true
}

#[test]
fn snapshot_round_trip_is_exact_for_random_programs() {
    let mut rng = SplitMix64::new(0xd1ff_0004);
    let mut restored = 0;
    for i in 0..12 {
        let case = random_case(&mut rng);
        if run_case_round_trip(&case, PROTOCOLS[i % 3], if i % 2 == 0 { 1 } else { 4 }) {
            restored += 1;
        }
    }
    assert!(restored >= 6, "only {restored}/12 random cases crossed a checkpoint boundary");
}

#[test]
fn snapshot_restore_rejects_corruption_and_wrong_identity() {
    let mut rng = SplitMix64::new(0xd1ff_0005);
    let case = random_case(&mut rng);
    let (m, _) = build_case_machine(&case, Protocol::WriteInvalidate, 1, None);
    let blob = m.snapshot();

    // Bit flip anywhere in the sealed frame.
    let mut bad = blob.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x08;
    let (mut r, _) = build_case_machine(&case, Protocol::WriteInvalidate, 1, None);
    assert!(r.restore(&bad).is_err(), "corrupted snapshot must not restore");

    // Truncation.
    let (mut r, _) = build_case_machine(&case, Protocol::WriteInvalidate, 1, None);
    assert!(r.restore(&blob[..blob.len() - 7]).is_err(), "truncated snapshot must not restore");

    // Wrong machine identity: different protocol, different shard count.
    let (mut r, _) = build_case_machine(&case, Protocol::PureUpdate, 1, None);
    assert!(r.restore(&blob).is_err(), "protocol mismatch must not restore");
    let (mut r, _) = build_case_machine(&case, Protocol::WriteInvalidate, 2, None);
    assert!(r.restore(&blob).is_err(), "shard-count mismatch must not restore");

    // The original blob still restores fine afterwards.
    let (mut r, _) = build_case_machine(&case, Protocol::WriteInvalidate, 1, None);
    assert!(r.restore(&blob).is_ok(), "pristine snapshot restores");
}

#[test]
fn machine_matches_oracle_under_wi() {
    let mut rng = SplitMix64::new(0xd1ff_0001);
    for _ in 0..24 {
        run_case(&random_case(&mut rng), Protocol::WriteInvalidate);
    }
}

#[test]
fn machine_matches_oracle_under_pu() {
    let mut rng = SplitMix64::new(0xd1ff_0002);
    for _ in 0..24 {
        run_case(&random_case(&mut rng), Protocol::PureUpdate);
    }
}

#[test]
fn machine_matches_oracle_under_cu() {
    let mut rng = SplitMix64::new(0xd1ff_0003);
    for _ in 0..24 {
        run_case(&random_case(&mut rng), Protocol::CompetitiveUpdate);
    }
}

//! End-to-end checks of the cache-line provenance layer: the online
//! sharing-pattern classifier reproduces the paper's qualitative story
//! (MCS qnodes are migratory, the centralized barrier counter is
//! wide-shared and mostly useless under pure update), provenance chains
//! explain coherence misses, and the per-block ledger balances exactly
//! against the Section 3.2 traffic classifier.

use kernels::workloads::{BarrierKind, BarrierWorkload, LockKind, LockWorkload, PostRelease};
use kernels::{barriers, locks};
use sim_machine::{Machine, MachineConfig, RunResult};
use sim_proto::Protocol;
use sim_stats::{LineageReport, SharingPattern};

const PROTOCOLS: [Protocol; 3] =
    [Protocol::WriteInvalidate, Protocol::PureUpdate, Protocol::CompetitiveUpdate];

fn run_mcs(procs: usize, protocol: Protocol) -> RunResult {
    // The paper workload at PPC_SCALE=0.02 — the scale the `line_profile`
    // quick start documents. Long enough that the cold-start transient
    // (first fills create extra short-lived sharers) stops dominating the
    // per-write fanout, and with the paper's 50-cycle critical section so
    // the contention pattern matches the figures.
    let w = LockWorkload {
        kind: LockKind::Mcs,
        total_acquires: 640,
        cs_cycles: 50,
        post_release: PostRelease::None,
    };
    let mut m = Machine::new(MachineConfig::paper_observed(procs, protocol));
    let layout = locks::install(&mut m, &w);
    let r = m.run();
    locks::verify(&mut m, &w, &layout);
    r
}

fn run_central_barrier(procs: usize, protocol: Protocol) -> RunResult {
    let w = BarrierWorkload { kind: BarrierKind::Centralized, episodes: 32 };
    let mut m = Machine::new(MachineConfig::paper_observed(procs, protocol));
    let layout = barriers::install(&mut m, &w);
    let r = m.run();
    barriers::verify(&mut m, &w, &layout);
    r
}

fn lineage(r: &RunResult) -> &LineageReport {
    r.obs.as_ref().expect("observed config").lineage.as_ref().expect("observed runs capture line provenance")
}

#[test]
fn plain_runs_carry_no_lineage() {
    let w = LockWorkload {
        kind: LockKind::Mcs,
        total_acquires: 16,
        cs_cycles: 20,
        post_release: PostRelease::None,
    };
    let mut m = Machine::new(MachineConfig::paper(4, Protocol::WriteInvalidate));
    locks::install(&mut m, &w);
    let r = m.run();
    assert!(r.obs.is_none(), "plain config records nothing");
}

/// Section 4.1: MCS qnodes hop from releaser to next acquirer — a single
/// reader/writer at a time. Under WI every qnode block must classify
/// migratory (each write disturbs exactly the previous holder's copy);
/// under the update protocols copies of a few qnodes proliferate (the
/// very effect update-conscious MCS exists to curb), but migratory stays
/// the dominant pattern of the structure.
#[test]
fn mcs_qnodes_classify_migratory() {
    for protocol in PROTOCOLS {
        let r = run_mcs(8, protocol);
        let lin = lineage(&r);
        let qnodes: Vec<_> = lin
            .blocks
            .iter()
            .filter(|b| b.label.as_deref().is_some_and(|l| l.starts_with("qnode[")))
            .collect();
        assert!(!qnodes.is_empty(), "{protocol:?}: qnode blocks were touched and labeled");
        if protocol == Protocol::WriteInvalidate {
            for b in &qnodes {
                assert_eq!(
                    b.pattern,
                    SharingPattern::Migratory,
                    "{protocol:?}: {} (fanout {:.2})",
                    b.label.as_deref().unwrap(),
                    b.fanout_per_write
                );
            }
        }
        let agg = lin.structure("qnode[*]").expect("per-structure aggregation");
        assert_eq!(agg.pattern, SharingPattern::Migratory, "{protocol:?}: dominant pattern");
        assert!(agg.blocks as usize >= qnodes.len());
    }
}

/// Section 4.2: every arrival writes the centralized counter while the
/// whole spin crowd caches it, so under pure update it classifies
/// wide-shared and the bulk of its update traffic is useless.
#[test]
fn central_barrier_counter_is_wide_shared_and_mostly_useless_under_pu() {
    let r = run_central_barrier(8, Protocol::PureUpdate);
    let lin = lineage(&r);
    let count = lin.block_labeled("count").expect("counter block is traced");
    assert_eq!(count.pattern, SharingPattern::WideShared, "fanout {:.2}", count.fanout_per_write);
    assert!(
        count.fanout_per_write >= 2.0,
        "each counter write reaches several sharers (got {:.2})",
        count.fanout_per_write
    );
    let useless = count.useless_traffic();
    let traffic = count.traffic();
    assert!(2 * useless > traffic, "useless share is the majority: {useless}/{traffic}");
    // The structure row tells the same story under its own name.
    let row = lin.structure("count").expect("structure aggregation");
    assert_eq!(row.pattern, SharingPattern::WideShared);
    assert!(row.updates.useless() > row.updates.useful());
}

/// Under write-invalidate the spin crowd's reloads of `count` are
/// coherence misses, and each one must carry a provenance chain naming
/// the writer whose invalidation evicted the copy.
#[test]
fn coherence_misses_carry_invalidation_provenance_under_wi() {
    let r = run_central_barrier(8, Protocol::WriteInvalidate);
    let lin = lineage(&r);
    let count = lin.block_labeled("count").expect("counter block is traced");
    let chain = count.provenance.as_ref().expect("spin reloads leave a chain");
    assert_ne!(chain.node, chain.cause.writer, "a node never invalidates itself");
    assert!(count.invalidations > 0, "WI invalidates the spin crowd");
    assert_eq!(count.update_deliveries, 0, "WI never delivers updates");
}

/// Conservation: every miss and update the Section 3.2 classifier counts
/// is attributed to exactly one block, so the per-block ledger sums back
/// to the classifier's totals — per class, not just in aggregate.
#[test]
fn lineage_ledger_balances_against_classifier_totals() {
    for protocol in PROTOCOLS {
        for r in [run_mcs(8, protocol), run_central_barrier(8, protocol)] {
            let lin = lineage(&r);
            assert_eq!(lin.miss_totals(), r.traffic.misses, "{protocol:?}: misses conserve");
            assert_eq!(lin.update_totals(), r.traffic.updates, "{protocol:?}: updates conserve");
        }
    }
}

/// Lineage is a passive observer: traced runs must report the same cycle
/// count and classified traffic as unobserved ones (the byte-identical
/// figure-output guarantee is `tests/observability.rs`'s job; this pins
/// the simulation itself).
#[test]
fn lineage_capture_does_not_perturb_the_run() {
    for protocol in PROTOCOLS {
        let w = BarrierWorkload { kind: BarrierKind::Centralized, episodes: 32 };
        let mut plain = Machine::new(MachineConfig::paper(8, protocol));
        barriers::install(&mut plain, &w);
        let rp = plain.run();
        let ro = run_central_barrier(8, protocol);
        assert_eq!(rp.cycles, ro.cycles, "{protocol:?}");
        assert_eq!(rp.traffic.misses, ro.traffic.misses, "{protocol:?}");
        assert_eq!(rp.traffic.updates, ro.traffic.updates, "{protocol:?}");
    }
}

/// The report serializes and the serialized form keeps the conservation
/// property visible (block rows sum to the classifier totals).
#[test]
fn lineage_report_json_parses() {
    let r = run_mcs(4, Protocol::CompetitiveUpdate);
    let lin = lineage(&r);
    let rendered = lin.to_json(&|p| format!("phase{p}")).render_pretty();
    let parsed = sim_stats::Json::parse(&rendered).expect("lineage report parses");
    let blocks = parsed.get("blocks").unwrap().as_arr().unwrap();
    assert_eq!(blocks.len(), lin.blocks.len());
    assert!(blocks.iter().any(|b| b.get("pattern").is_some()));
}

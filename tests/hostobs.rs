//! Enforcement layer for harness observability (host self-profiling and
//! determinism fingerprints).
//!
//! Two promises are on trial:
//!
//! * **Zero perturbation** — running with `hostobs` enabled measures the
//!   harness but may not change the simulated machine by a single cycle,
//!   instruction, or traffic event.
//! * **Fingerprint invariance** — the epoch-digest chain is a property of
//!   the *simulated run*, not of the plumbing around it: worker count,
//!   the in-process memo table, and the on-disk sweep cache must all
//!   replay it byte-identically, and genuinely different runs must
//!   produce chains that diff to a concrete first divergence.
//!
//! Workloads are deliberately small so the whole file runs in a
//! debug-mode tier-1 pass; neither promise depends on scale.

use kernels::runner::{ExperimentSpec, KernelSpec};
use kernels::workloads::{BarrierKind, BarrierWorkload, LockKind, LockWorkload, PostRelease};
use ppc_bench::observed::run_kernel;
use ppc_bench::sweep::{self, RunSpec, SweepOptions};
use sim_machine::{Machine, MachineConfig};
use sim_proto::Protocol;
use sim_stats::FingerprintChain;

const PROTOCOLS: [Protocol; 3] =
    [Protocol::WriteInvalidate, Protocol::PureUpdate, Protocol::CompetitiveUpdate];

/// Workload sizes are unique to this file so its memo/disk cache keys
/// never collide with other test binaries sharing the scratch space.
fn small_lock() -> KernelSpec {
    KernelSpec::Lock(LockWorkload {
        kind: LockKind::Mcs,
        total_acquires: 192,
        cs_cycles: 40,
        post_release: PostRelease::None,
    })
}

fn small_barrier() -> KernelSpec {
    KernelSpec::Barrier(BarrierWorkload { kind: BarrierKind::Centralized, episodes: 36 })
}

fn run(cfg: MachineConfig, kernel: &KernelSpec) -> sim_machine::RunResult {
    run_kernel(&mut Machine::new(cfg), kernel)
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ppc-hostobs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Six cells (2 proc counts × 3 protocols), all carrying fingerprints.
fn fingerprint_specs(kernel: &KernelSpec) -> Vec<RunSpec> {
    [2usize, 4]
        .into_iter()
        .flat_map(|procs| PROTOCOLS.into_iter().map(move |protocol| (procs, protocol)))
        .map(|(procs, protocol)| {
            RunSpec::with_config(
                ExperimentSpec { procs, protocol, kernel: *kernel },
                MachineConfig::paper_hostobs(procs, protocol),
            )
        })
        .collect()
}

fn chains(outs: &[kernels::runner::ExperimentOutcome]) -> Vec<FingerprintChain> {
    outs.iter().map(|o| o.fingerprint.clone().expect("hostobs cell carries a fingerprint")).collect()
}

#[test]
fn hostobs_never_perturbs_the_simulation() {
    for kernel in [small_lock(), small_barrier()] {
        for protocol in PROTOCOLS {
            let bare = run(MachineConfig::paper(4, protocol), &kernel);
            let obs = run(MachineConfig::paper_hostobs(4, protocol), &kernel);
            assert!(bare.host.is_none() && bare.fingerprint.is_none());
            assert_eq!(bare.cycles, obs.cycles, "{protocol:?}: cycles moved under hostobs");
            assert_eq!(bare.instructions, obs.instructions, "{protocol:?}");
            assert_eq!(
                format!("{:?}", bare.traffic),
                format!("{:?}", obs.traffic),
                "{protocol:?}: traffic classification moved under hostobs"
            );
            assert_eq!(format!("{:?}", bare.net), format!("{:?}", obs.net), "{protocol:?}");
        }
    }
}

#[test]
fn host_report_accounts_for_the_run() {
    let r = run(MachineConfig::paper_hostobs(4, Protocol::WriteInvalidate), &small_lock());
    let host = r.host.expect("hostobs run carries a host profile");
    assert_eq!(host.cycles, r.cycles);
    assert!(host.events > 0, "no events popped?");
    let pops = host.cats.iter().find(|c| c.name == "event-pop").expect("pop category present");
    // Every successful pop is timed; empty polls at the end of the run
    // are timed too, so calls can exceed the event count slightly.
    assert!(pops.calls >= host.events, "every pop is timed");
    assert!(host.accounted_nanos() <= host.wall_nanos, "categories partition wall time");
    assert!(host.events_per_cycle() > 0.0);

    let q = &host.queue;
    assert!(q.scheduled >= host.events, "every popped event was scheduled");
    assert!(q.peak_depth >= 1);
    assert!(q.depth.count() > 0, "queue occupancy was sampled");

    let fp = r.fingerprint.expect("hostobs run carries a fingerprint");
    assert_eq!(fp.total_events, host.events, "fingerprint saw every event");
    assert_eq!(
        fp.epochs.len() as u64,
        host.events.div_ceil(fp.epoch_events),
        "one digest per (possibly partial) epoch"
    );
}

#[test]
fn fingerprints_are_identical_across_worker_counts() {
    let specs = fingerprint_specs(&small_lock());
    sweep::clear_memo();
    let serial = SweepOptions { workers: 1, disk_cache: None };
    let (outs, _) = sweep::run_specs_with(&specs, &serial);
    let reference = chains(&outs);
    for workers in [2, 8] {
        sweep::clear_memo();
        let (outs, _) = sweep::run_specs_with(&specs, &SweepOptions { workers, disk_cache: None });
        for (i, (got, want)) in chains(&outs).iter().zip(&reference).enumerate() {
            assert_eq!(want.first_divergence(got), None, "cell {i} diverged under {workers} workers");
            assert_eq!(got, want, "cell {i}: chains compare unequal under {workers} workers");
        }
    }
}

#[test]
fn fingerprints_survive_the_disk_cache_byte_identically() {
    let specs = fingerprint_specs(&small_barrier());
    let dir = scratch_dir("disk");
    let opts = SweepOptions { workers: 2, disk_cache: Some(dir.clone()) };

    sweep::clear_memo();
    let (cold, stats) = sweep::run_specs_with(&specs, &opts);
    assert_eq!(stats.simulated, specs.len(), "cold pass must simulate, got {stats:?}");
    let reference = chains(&cold);

    // Drop the in-process table so the warm pass exercises the on-disk
    // entry decoder (the `fp=` line), not a memory lookup.
    sweep::clear_memo();
    let (warm, stats) = sweep::run_specs_with(&specs, &opts);
    assert_eq!(stats.from_disk, specs.len(), "warm pass must replay from disk, got {stats:?}");
    assert_eq!(chains(&warm), reference, "fingerprints decoded from disk differ");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn different_runs_diff_to_a_concrete_divergence() {
    let kernel = small_lock();
    let a = run(MachineConfig::paper_hostobs(4, Protocol::WriteInvalidate), &kernel)
        .fingerprint
        .expect("fingerprint present");
    let b = run(MachineConfig::paper_hostobs(4, Protocol::PureUpdate), &kernel)
        .fingerprint
        .expect("fingerprint present");
    let d = a.first_divergence(&b).expect("different protocols must diverge");
    // Protocols diverge in the very first event epoch, and the reported
    // divergence must point there — not merely at the final state.
    assert_eq!(d, sim_stats::FingerprintDivergence::Epoch(0));
}

//! Functional equivalence across protocols and against the reference
//! executor: coherence protocols change *timing and traffic*, never
//! *results*. Every kernel must compute the same final shared-memory
//! values under WI, PU, and CU — and agree with the timing-free
//! sequentially-consistent reference machine where the result is
//! schedule-independent.

use kernels::workloads::{
    BarrierKind, BarrierWorkload, LockKind, LockWorkload, PostRelease, ReductionKind, ReductionWorkload,
};
use kernels::{barriers, locks, reductions};
use sim_isa::reference::RefMachine;
use sim_isa::{AluOp, ProgramBuilder};
use sim_machine::{Machine, MachineConfig};
use sim_proto::Protocol;

const PROTOCOLS: [Protocol; 3] =
    [Protocol::WriteInvalidate, Protocol::PureUpdate, Protocol::CompetitiveUpdate];

#[test]
fn ticket_lock_final_counters_match_across_protocols() {
    let w = LockWorkload {
        kind: LockKind::Ticket,
        total_acquires: 200,
        cs_cycles: 10,
        post_release: PostRelease::None,
    };
    for protocol in PROTOCOLS {
        let mut m = Machine::new(MachineConfig::paper(5, protocol));
        let layout = locks::install(&mut m, &w);
        m.run();
        assert_eq!(m.read_word(layout.next_ticket), 200, "{protocol:?}");
        assert_eq!(m.read_word(layout.now_serving), 200, "{protocol:?}");
    }
}

#[test]
fn sequential_reduction_result_matches_reference_value() {
    // The sequential reduction's result is schedule-independent, so every
    // protocol must produce exactly the oracle value.
    let w = ReductionWorkload { kind: ReductionKind::Sequential, episodes: 9, skew: 0 };
    let expected: u32 = (0..6).flat_map(|i| (0..9).map(move |ep| reductions::value_of(i, ep))).max().unwrap();
    for protocol in PROTOCOLS {
        let mut m = Machine::new(MachineConfig::paper(6, protocol));
        let layout = reductions::install(&mut m, &w);
        m.run();
        assert_eq!(m.read_word(layout.max), expected, "{protocol:?}");
    }
}

#[test]
fn parallel_reduction_matches_sequential_result() {
    // Both strategies reduce the same inputs; their final max must agree
    // (and equal the oracle) regardless of protocol.
    for protocol in PROTOCOLS {
        let mut results = Vec::new();
        for kind in [ReductionKind::Parallel, ReductionKind::Sequential] {
            let w = ReductionWorkload { kind, episodes: 7, skew: 0 };
            let mut m = Machine::new(MachineConfig::paper(4, protocol));
            let layout = reductions::install(&mut m, &w);
            m.run();
            results.push(m.read_word(layout.max));
        }
        assert_eq!(results[0], results[1], "{protocol:?}");
    }
}

#[test]
fn barrier_completion_counts_match_across_protocols() {
    for kind in [BarrierKind::Centralized, BarrierKind::Dissemination, BarrierKind::Tree] {
        let w = BarrierWorkload { kind, episodes: 30 };
        for protocol in PROTOCOLS {
            let mut m = Machine::new(MachineConfig::paper(7, protocol));
            let layout = barriers::install(&mut m, &w);
            m.run();
            for (i, &d) in layout.done.iter().enumerate() {
                assert_eq!(m.read_word(d), 30, "{kind:?} {protocol:?} cpu {i}");
            }
        }
    }
}

/// Builds a small racy histogram program: each CPU fetch_adds a shared
/// counter and stores a value derived from its ticket into a shared slot.
fn histogram_programs(counter: u32, slots: u32, cpus: usize, iters: u32) -> Vec<sim_isa::Program> {
    (0..cpus)
        .map(|_| {
            let mut b = ProgramBuilder::new();
            b.imm(10, counter).imm(11, 1).imm(15, iters);
            b.label("loop");
            b.fetch_add(0, 10, 11); // my index
                                    // slots[index] = index + 1
            b.alui(AluOp::Mul, 1, 0, 4);
            b.alui(AluOp::Add, 1, 1, slots);
            b.alui(AluOp::Add, 2, 0, 1);
            b.store(1, 0, 2);
            b.fence();
            b.alui(AluOp::Sub, 15, 15, 1);
            b.bnz(15, "loop");
            b.halt();
            b.build()
        })
        .collect()
}

#[test]
fn atomic_histogram_matches_reference_under_all_protocols() {
    // fetch_add hands every CPU a distinct index, so the final slot
    // contents are schedule-independent: slots[k] == k+1.
    let cpus = 4;
    let iters = 8;
    for protocol in PROTOCOLS {
        let mut m = Machine::new(MachineConfig::paper(cpus, protocol));
        let counter = m.alloc().alloc_block_on(0, 1);
        let slots = m.alloc().alloc_block_on(1, cpus as u32 * iters);
        for (i, p) in histogram_programs(counter, slots, cpus, iters).into_iter().enumerate() {
            m.set_program(i, p);
        }
        let r = m.run();
        assert!(r.cycles > 0);
        for k in 0..cpus as u32 * iters {
            assert_eq!(m.read_word(slots + 4 * k), k + 1, "{protocol:?} slot {k}");
        }
    }
    // And the reference machine agrees.
    let mut reference = RefMachine::new(histogram_programs(0x100, 0x200, cpus, iters), 99);
    reference.poke(0x100, 0);
    let out = reference.run(1_000_000);
    assert!(out.all_halted);
    for k in 0..cpus as u32 * iters {
        assert_eq!(out.word(0x200 + 4 * k), k + 1, "reference slot {k}");
    }
}

#[test]
fn mcs_queue_drains_under_every_protocol_and_size() {
    for protocol in PROTOCOLS {
        for procs in [2usize, 3, 6] {
            let w = LockWorkload {
                kind: LockKind::Mcs,
                total_acquires: 90,
                cs_cycles: 5,
                post_release: PostRelease::None,
            };
            let mut m = Machine::new(MachineConfig::paper(procs, protocol));
            let layout = locks::install(&mut m, &w);
            m.run();
            assert_eq!(m.read_word(layout.tail), 0, "{protocol:?} x{procs}");
        }
    }
}

//! Golden-number regression tests.
//!
//! The simulator is fully deterministic, so these fixed-scale runs must
//! reproduce their recorded measurements *exactly*. Any intentional change
//! to timing, protocol behavior, or classification shows up here first —
//! re-record by running the `golden_gen` bench binary and auditing the
//! diff against EXPERIMENTS.md.

use kernels::runner::{run_experiment, ExperimentSpec, KernelSpec};
use kernels::workloads::{
    BarrierKind, BarrierWorkload, LockKind, LockWorkload, PostRelease, ReductionKind, ReductionWorkload,
};
use sim_proto::Protocol;

/// (name, cycles, total misses, total updates, network messages)
const GOLDEN: [(&str, u64, u64, u64, u64); 8] = [
    ("tk_wi_8", 292578, 4140, 0, 18751),
    ("mcs_pu_8", 48539, 32, 7612, 16695),
    ("uc_cu_8", 57706, 1038, 3063, 9644),
    ("db_pu_8", 13145, 104, 2400, 7200),
    ("cb_wi_8", 95623, 1417, 0, 5513),
    ("tb_cu_8", 29692, 30, 2095, 4909),
    ("sr_pu_8", 15569, 31, 721, 1470),
    ("pr_wi_8", 17957, 46, 0, 141),
];

fn spec_of(name: &str) -> ExperimentSpec {
    let lock = |kind| {
        KernelSpec::Lock(LockWorkload {
            kind,
            total_acquires: 512,
            cs_cycles: 50,
            post_release: PostRelease::None,
        })
    };
    let barrier = |kind| KernelSpec::Barrier(BarrierWorkload { kind, episodes: 100 });
    let reduction = |kind| KernelSpec::Reduction(ReductionWorkload { kind, episodes: 100, skew: 0 });
    let (protocol, kernel) = match name {
        "tk_wi_8" => (Protocol::WriteInvalidate, lock(LockKind::Ticket)),
        "mcs_pu_8" => (Protocol::PureUpdate, lock(LockKind::Mcs)),
        "uc_cu_8" => (Protocol::CompetitiveUpdate, lock(LockKind::McsUpdateConscious)),
        "db_pu_8" => (Protocol::PureUpdate, barrier(BarrierKind::Dissemination)),
        "cb_wi_8" => (Protocol::WriteInvalidate, barrier(BarrierKind::Centralized)),
        "tb_cu_8" => (Protocol::CompetitiveUpdate, barrier(BarrierKind::Tree)),
        "sr_pu_8" => (Protocol::PureUpdate, reduction(ReductionKind::Sequential)),
        "pr_wi_8" => (Protocol::WriteInvalidate, reduction(ReductionKind::Parallel)),
        other => panic!("unknown golden case {other}"),
    };
    ExperimentSpec { procs: 8, protocol, kernel }
}

#[test]
fn golden_measurements_are_stable() {
    for (name, cycles, misses, updates, messages) in GOLDEN {
        let out = run_experiment(&spec_of(name));
        assert_eq!(out.cycles, cycles, "{name}: cycles");
        assert_eq!(out.traffic.misses.total_misses(), misses, "{name}: misses");
        assert_eq!(out.traffic.updates.total(), updates, "{name}: updates");
        assert_eq!(out.net.messages, messages, "{name}: messages");
    }
}

//! Golden-number regression tests.
//!
//! The simulator is fully deterministic, so these fixed-scale runs must
//! reproduce their recorded measurements *exactly*. Any intentional change
//! to timing, protocol behavior, or classification shows up here first —
//! re-record by running the `golden_gen` bench binary and auditing the
//! diff against EXPERIMENTS.md.

use kernels::runner::{run_experiment, ExperimentSpec, KernelSpec};
use kernels::workloads::{
    BarrierKind, BarrierWorkload, LockKind, LockWorkload, PostRelease, ReductionKind, ReductionWorkload,
};
use sim_proto::Protocol;

/// (name, cycles, total misses, total updates, network messages)
const GOLDEN: [(&str, u64, u64, u64, u64); 8] = [
    ("tk_wi_8", 292578, 4140, 0, 18751),
    ("mcs_pu_8", 48539, 32, 7612, 16695),
    ("uc_cu_8", 57706, 1038, 3063, 9644),
    ("db_pu_8", 13145, 104, 2400, 7200),
    ("cb_wi_8", 95623, 1417, 0, 5513),
    ("tb_cu_8", 29692, 30, 2095, 4909),
    ("sr_pu_8", 15569, 31, 721, 1470),
    ("pr_wi_8", 17957, 46, 0, 141),
];

fn spec_of(name: &str) -> ExperimentSpec {
    let lock = |kind| {
        KernelSpec::Lock(LockWorkload {
            kind,
            total_acquires: 512,
            cs_cycles: 50,
            post_release: PostRelease::None,
        })
    };
    let barrier = |kind| KernelSpec::Barrier(BarrierWorkload { kind, episodes: 100 });
    let reduction = |kind| KernelSpec::Reduction(ReductionWorkload { kind, episodes: 100, skew: 0 });
    let (protocol, kernel) = match name {
        "tk_wi_8" => (Protocol::WriteInvalidate, lock(LockKind::Ticket)),
        "mcs_pu_8" => (Protocol::PureUpdate, lock(LockKind::Mcs)),
        "uc_cu_8" => (Protocol::CompetitiveUpdate, lock(LockKind::McsUpdateConscious)),
        "db_pu_8" => (Protocol::PureUpdate, barrier(BarrierKind::Dissemination)),
        "cb_wi_8" => (Protocol::WriteInvalidate, barrier(BarrierKind::Centralized)),
        "tb_cu_8" => (Protocol::CompetitiveUpdate, barrier(BarrierKind::Tree)),
        "sr_pu_8" => (Protocol::PureUpdate, reduction(ReductionKind::Sequential)),
        "pr_wi_8" => (Protocol::WriteInvalidate, reduction(ReductionKind::Parallel)),
        other => panic!("unknown golden case {other}"),
    };
    ExperimentSpec { procs: 8, protocol, kernel }
}

#[test]
fn golden_measurements_are_stable() {
    for (name, cycles, misses, updates, messages) in GOLDEN {
        let out = run_experiment(&spec_of(name));
        assert_eq!(out.cycles, cycles, "{name}: cycles");
        assert_eq!(out.traffic.misses.total_misses(), misses, "{name}: misses");
        assert_eq!(out.traffic.updates.total(), updates, "{name}: updates");
        assert_eq!(out.net.messages, messages, "{name}: messages");
    }
}

/// Full-scale golden rows: one row per published figure, transcribed from
/// the committed `figures_full.txt`. These pin the *paper-scale* numbers
/// (32000 acquires, 5000 episodes), unlike the small-scale tuples above,
/// so a regression that only manifests under real contention levels still
/// trips a test. Full scale is too slow for debug builds; the release CI
/// pass (`cargo test --release`) runs them.
#[cfg(not(debug_assertions))]
mod full_scale {
    use super::*;

    fn paper_lock(kind: LockKind) -> KernelSpec {
        KernelSpec::Lock(LockWorkload { total_acquires: 32_000, ..LockWorkload::paper(kind) })
    }

    fn paper_barrier(kind: BarrierKind) -> KernelSpec {
        KernelSpec::Barrier(BarrierWorkload { episodes: 5_000, ..BarrierWorkload::paper(kind) })
    }

    fn paper_reduction(kind: ReductionKind) -> KernelSpec {
        KernelSpec::Reduction(ReductionWorkload { episodes: 5_000, ..ReductionWorkload::paper(kind) })
    }

    /// Asserts one latency-figure row: `avg_latency` at each machine size,
    /// compared at the figures' printed precision (one decimal place).
    fn assert_latency_row(figure: &str, protocol: Protocol, kernel: KernelSpec, want: [&str; 6]) {
        for (procs, want) in [1usize, 2, 4, 8, 16, 32].into_iter().zip(want) {
            let out = run_experiment(&ExperimentSpec { procs, protocol, kernel });
            assert_eq!(format!("{:.1}", out.avg_latency), want, "{figure}: P={procs}");
        }
    }

    /// Asserts one miss-figure row at 32 processors.
    fn assert_miss_row(figure: &str, protocol: Protocol, kernel: KernelSpec, want: [u64; 7]) {
        let out = run_experiment(&ExperimentSpec { procs: 32, protocol, kernel });
        let m = out.traffic.misses;
        let got = [
            m.total_misses(),
            m.cold,
            m.true_sharing,
            m.false_sharing,
            m.eviction,
            m.drop,
            m.exclusive_requests,
        ];
        assert_eq!(got, want, "{figure}");
    }

    /// Asserts one update-figure row at 32 processors.
    fn assert_update_row(figure: &str, protocol: Protocol, kernel: KernelSpec, want: [u64; 7]) {
        let out = run_experiment(&ExperimentSpec { procs: 32, protocol, kernel });
        let u = out.traffic.updates;
        let got = [
            u.total(),
            u.true_sharing,
            u.false_sharing,
            u.proliferation,
            u.replacement,
            u.termination,
            u.drop,
        ];
        assert_eq!(got, want, "{figure}");
    }

    #[test]
    fn figure_08_ticket_invalidate_row() {
        assert_latency_row(
            "fig08 tk i",
            Protocol::WriteInvalidate,
            paper_lock(LockKind::Ticket),
            ["9.0", "123.0", "239.6", "524.5", "1085.7", "2205.2"],
        );
    }

    #[test]
    fn figure_09_ticket_invalidate_row() {
        assert_miss_row(
            "fig09 tk i",
            Protocol::WriteInvalidate,
            paper_lock(LockKind::Ticket),
            [1026527, 64, 126428, 900035, 0, 0, 60967],
        );
    }

    #[test]
    fn figure_10_ticket_update_row() {
        assert_update_row(
            "fig10 tk u",
            Protocol::PureUpdate,
            paper_lock(LockKind::Ticket),
            [1983484, 1019405, 924452, 39592, 0, 35, 0],
        );
    }

    #[test]
    fn figure_11_centralized_invalidate_row() {
        assert_latency_row(
            "fig11 cb i",
            Protocol::WriteInvalidate,
            paper_barrier(BarrierKind::Centralized),
            ["9.0", "212.5", "412.1", "951.6", "2151.7", "4745.3"],
        );
    }

    #[test]
    fn figure_12_centralized_invalidate_row() {
        assert_miss_row(
            "fig12 cb i",
            Protocol::WriteInvalidate,
            paper_barrier(BarrierKind::Centralized),
            [310065, 96, 309969, 0, 0, 0, 4999],
        );
    }

    #[test]
    fn figure_13_centralized_update_row() {
        assert_update_row(
            "fig13 cb u",
            Protocol::PureUpdate,
            paper_barrier(BarrierKind::Centralized),
            [5269504, 314967, 0, 4954505, 0, 32, 0],
        );
    }

    #[test]
    fn figure_14_sequential_invalidate_row() {
        assert_latency_row(
            "fig14 sr i",
            Protocol::WriteInvalidate,
            paper_reduction(ReductionKind::Sequential),
            ["36.0", "153.2", "335.3", "724.0", "1528.2", "3330.3"],
        );
    }

    #[test]
    fn figure_15_sequential_invalidate_row() {
        assert_miss_row(
            "fig15 sr i",
            Protocol::WriteInvalidate,
            paper_reduction(ReductionKind::Sequential),
            [155406, 127, 155279, 0, 0, 0, 154980],
        );
    }

    #[test]
    fn figure_16_sequential_update_row() {
        assert_update_row(
            "fig16 sr u",
            Protocol::PureUpdate,
            paper_reduction(ReductionKind::Sequential),
            [155279, 155279, 0, 0, 0, 0, 0],
        );
    }

    /// §4.1 text variant (random post-release delay), ticket/invalidate at
    /// 32 processors — value recorded from `text_lock_random_delay`.
    #[test]
    fn text_variant_lock_random_delay_row() {
        let kernel = KernelSpec::Lock(LockWorkload {
            total_acquires: 32_000,
            post_release: PostRelease::Random { bound: 100 },
            ..LockWorkload::paper(LockKind::Ticket)
        });
        let out = run_experiment(&ExperimentSpec { procs: 32, protocol: Protocol::WriteInvalidate, kernel });
        assert_eq!(format!("{:.1}", out.avg_latency), TEXT_RANDOM_DELAY_TK_I_32, "text random-delay tk i");
    }

    /// §4.1 text variant (outside/inside work ratio = P), ticket/invalidate
    /// at 32 processors — value recorded from `text_lock_proportional`.
    #[test]
    fn text_variant_lock_proportional_row() {
        let kernel = KernelSpec::Lock(LockWorkload {
            total_acquires: 32_000,
            post_release: PostRelease::Proportional { ratio: 32 },
            ..LockWorkload::paper(LockKind::Ticket)
        });
        let out = run_experiment(&ExperimentSpec { procs: 32, protocol: Protocol::WriteInvalidate, kernel });
        assert_eq!(format!("{:.1}", out.avg_latency), TEXT_PROPORTIONAL_TK_I_32, "text proportional tk i");
    }

    /// §4.3 text variant (load imbalance), sequential reduction under
    /// invalidate at 32 processors — recorded from `text_reduction_imbalance`.
    #[test]
    fn text_variant_reduction_imbalance_row() {
        let kernel = KernelSpec::Reduction(ReductionWorkload {
            episodes: 5_000,
            skew: TEXT_IMBALANCE_SKEW,
            ..ReductionWorkload::paper(ReductionKind::Sequential)
        });
        let out = run_experiment(&ExperimentSpec { procs: 32, protocol: Protocol::WriteInvalidate, kernel });
        assert_eq!(format!("{:.1}", out.avg_latency), TEXT_IMBALANCE_SR_I_32, "text imbalance sr i");
    }

    // At full contention the post-release delay hides under the handoff
    // chain, so the random-delay value coincides with Figure 8's — which
    // is itself the paper's point about these variants.
    const TEXT_RANDOM_DELAY_TK_I_32: &str = "2205.2";
    const TEXT_PROPORTIONAL_TK_I_32: &str = "2207.5";
    const TEXT_IMBALANCE_SKEW: u32 = 2000;
    const TEXT_IMBALANCE_SR_I_32: &str = "5148.4";
}
